package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ubac/internal/admission"
	"ubac/internal/routes"
)

// Backend answers the admission-shaped frames. The concrete
// *admission.Controller satisfies it structurally; a cluster edge
// node's lease plane is the other implementation — the wire layer does
// not care where verdicts come from, only that batch semantics hold.
type Backend interface {
	AdmitBatch(items []admission.BatchItem, results []admission.BatchResult) []admission.BatchResult
	TeardownBatch(ids []admission.FlowID, errs []error) []error
	Classes() []string
	ClassRoutes(class string) (*routes.Set, error)
}

// ClusterHandler answers the cluster frames (lease, heartbeat, fetch,
// revoke) on behalf of a cluster node. The wire layer hands over the
// raw decoded frame and encodes whatever comes back; body layouts are
// the cluster package's business. A non-zero errStatus becomes a
// protocol-error response frame (the connection stays up — cluster
// peers ride the same connections as admission traffic).
type ClusterHandler interface {
	ClusterFrame(typ byte, count uint16, body []byte) (respCount uint16, respBody []byte, errStatus uint32, errMsg string)
}

// Observer receives transport telemetry; the telemetry RegistrySink
// satisfies it structurally. Implementations must be cheap and safe
// for concurrent use — every method is on a connection's hot path.
type Observer interface {
	// WireConnOpened / WireConnClosed bracket one accepted connection.
	WireConnOpened()
	WireConnClosed()
	// WireRead reports one read pass: complete frames decoded and
	// payload bytes consumed.
	WireRead(frames, bytes int)
	// WireWrite reports response frames and bytes handed to the socket.
	WireWrite(frames, bytes int)
	// WireCoalesce reports one coalesced batch call: how many pipelined
	// frames were drained into it and how many operations they carried.
	WireCoalesce(frames, ops int)
}

// Options tunes a Server. The zero value is production-ready.
type Options struct {
	// Observer receives transport telemetry (nil = none).
	Observer Observer
	// MaxWriteBuffer bounds one connection's pending response bytes.
	// A client that stops reading while continuing to send would grow
	// this without limit; past the bound the connection is dropped
	// instead (default 4 MiB, min 64 KiB).
	MaxWriteBuffer int
	// ReadBuffer is the initial per-connection read buffer (default
	// 64 KiB; grows up to a full frame when one exceeds it).
	ReadBuffer int
	// WriteTimeout bounds one socket write; a peer that stops draining
	// its receive window is disconnected (default 10s).
	WriteTimeout time.Duration
	// DrainGrace is how long Shutdown keeps reading already-sent bytes
	// so in-flight frames complete and get answered (default 100ms).
	DrainGrace time.Duration
	// HandshakeTimeout bounds the magic + hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// Cluster handles the cluster frame types; nil (the default) leaves
	// them protocol errors, so a non-cluster daemon is byte-for-byte
	// unchanged.
	Cluster ClusterHandler
}

func (o Options) withDefaults() Options {
	if o.MaxWriteBuffer <= 0 {
		o.MaxWriteBuffer = 4 << 20
	}
	if o.MaxWriteBuffer < 64<<10 {
		o.MaxWriteBuffer = 64 << 10
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 100 * time.Millisecond
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	return o
}

// Server serves admission decisions over the binary wire protocol:
// one goroutine pair (reader, writer) per connection, pooled frame
// buffers, and adaptive admit coalescing — every complete frame a read
// pass delivers is drained into as few Controller batch calls as
// operation ordering allows before any response is written.
type Server struct {
	ctrl    Backend
	classes []string
	opts    Options

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*serverConn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewServer builds a wire server over a configured backend (the
// admission controller, or a cluster edge plane). The class table
// snapshot taken here is what hello responses advertise; it is
// immutable for the backend's lifetime.
func NewServer(ctrl Backend, opts Options) *Server {
	return &Server{
		ctrl:    ctrl,
		classes: ctrl.Classes(),
		opts:    opts.withDefaults(),
		conns:   make(map[*serverConn]struct{}),
	}
}

// Serve accepts connections on ln until Shutdown (returns nil) or an
// unrecoverable accept error (returned).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		}
		c := s.newConn(nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go c.serve()
	}
}

// Shutdown drains: the listener closes, every connection finishes and
// answers the frames it has already received (kept alive for
// DrainGrace so bytes in flight still land), pending responses flush,
// then connections close. It returns when every connection is done or
// ctx expires, in which case stragglers are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ConnCount returns the number of live connections (test hook).
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// serverConn is one accepted connection: the reader goroutine decodes
// and coalesces frames, the writer goroutine flushes the bounded
// response buffer.
type serverConn struct {
	srv *Server
	nc  net.Conn

	// Writer state: responses accumulate in wbuf under wmu; the writer
	// swaps in the spare half and writes, so a fast producer never
	// waits on the socket — until the bound, where the connection is
	// declared slow and dropped.
	wmu        sync.Mutex
	wcond      *sync.Cond
	wbuf       []byte
	wspare     []byte
	wframes    int // frames staged in wbuf, for the observer
	wClosing   bool
	wErr       bool
	writerDone chan struct{}

	draining atomic.Bool

	// Reader scratch, reused across read passes.
	frames   []Frame
	items    []admission.BatchItem
	results  []admission.BatchResult
	tids     []admission.FlowID
	terrs    []error
	runLens  []int // ops per frame in the current coalesced run
	runSeqs  []uint64
	respBody []byte
	resp     []byte
}

func (s *Server) newConn(nc net.Conn) *serverConn {
	c := &serverConn{
		srv:        s,
		nc:         nc,
		wbuf:       make([]byte, 0, 16<<10),
		wspare:     make([]byte, 0, 16<<10),
		writerDone: make(chan struct{}),
	}
	c.wcond = sync.NewCond(&c.wmu)
	return c
}

// beginDrain stops the connection accepting new work soon: reads keep
// landing for DrainGrace (so frames already on the wire complete and
// get answered), then the reader sees the deadline, flushes and closes.
func (c *serverConn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.DrainGrace))
}

// serve runs the connection to completion.
func (c *serverConn) serve() {
	obs := c.srv.opts.Observer
	if obs != nil {
		obs.WireConnOpened()
	}
	go c.writeLoop()
	c.readLoop()
	// Reader is done (error, EOF or drain): let the writer flush what
	// is queued, then tear the socket down and unregister.
	c.closeWriter()
	c.nc.Close()
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.wg.Done()
	if obs != nil {
		obs.WireConnClosed()
	}
}

// readLoop validates the preamble then decodes, coalesces and answers
// frames until the connection ends.
func (c *serverConn) readLoop() {
	c.nc.SetReadDeadline(time.Now().Add(c.srv.opts.HandshakeTimeout))
	var magic [8]byte
	if _, err := readFull(c.nc, magic[:]); err != nil || magic != Magic {
		return
	}
	c.nc.SetReadDeadline(time.Time{})
	if c.draining.Load() {
		// Shutdown raced the handshake; don't serve new work.
		return
	}

	pending := make([]byte, 0, c.srv.opts.ReadBuffer)
	helloed := false
	for {
		if len(pending) == cap(pending) {
			// An incomplete frame fills the buffer: grow toward the frame
			// cap so one max-size frame always fits.
			grown := make([]byte, len(pending), min2(2*cap(pending), MaxPayload+frameHeaderLen))
			copy(grown, pending)
			pending = grown
		}
		n, err := c.nc.Read(pending[len(pending):cap(pending):cap(pending)])
		pending = pending[:len(pending)+n]
		if n > 0 {
			consumed, ok := c.process(pending, &helloed)
			if !ok {
				return
			}
			if consumed > 0 {
				pending = pending[:copy(pending, pending[consumed:])]
			}
		}
		if err != nil {
			// A torn frame tail (len(pending) > 0) is dropped whole, like
			// a torn WAL tail: the frame is the atomicity unit. During a
			// drain the deadline firing is the signal that in-flight
			// frames have been given their grace.
			return
		}
	}
}

// process decodes every complete frame in pending and answers it,
// coalescing run-adjacent admit and teardown frames into single batch
// calls. It returns the bytes consumed and false when the connection
// must close (protocol error).
func (c *serverConn) process(pending []byte, helloed *bool) (int, bool) {
	c.frames = c.frames[:0]
	consumed := 0
	for {
		f, n, err := DecodeFrame(pending[consumed:])
		if err != nil {
			if errors.Is(err, ErrShort) {
				break
			}
			// Corrupt framing: nothing after this point can be trusted.
			c.enqueueFrame(appendErrorFrame(c.scratch(), f.Type, 0, StatusInternal, err.Error()), 1)
			return consumed, false
		}
		consumed += n
		c.frames = append(c.frames, f)
	}
	if obs := c.srv.opts.Observer; obs != nil && len(c.frames) > 0 {
		obs.WireRead(len(c.frames), consumed)
	}

	i := 0
	for i < len(c.frames) {
		f := c.frames[i]
		if !*helloed {
			if f.Type != FrameHello {
				c.enqueueFrame(appendErrorFrame(c.scratch(), f.Type, f.Seq, StatusInternal, "hello required first"), 1)
				return consumed, false
			}
			if !c.handleHello(f) {
				return consumed, false
			}
			*helloed = true
			i++
			continue
		}
		switch f.Type {
		case FrameAdmit:
			j := i
			for j < len(c.frames) && c.frames[j].Type == FrameAdmit {
				j++
			}
			if !c.handleAdmitRun(c.frames[i:j]) {
				return consumed, false
			}
			i = j
		case FrameTeardown:
			j := i
			for j < len(c.frames) && c.frames[j].Type == FrameTeardown {
				j++
			}
			if !c.handleTeardownRun(c.frames[i:j]) {
				return consumed, false
			}
			i = j
		case FrameRoutes:
			if !c.handleRoutes(f) {
				return consumed, false
			}
			i++
		case FramePing:
			c.enqueueFrame(AppendFrame(c.scratch(), FramePing, FlagResp, 0, f.Seq, nil), 1)
			i++
		case FrameHello:
			// A second hello is a client bug, but harmless: re-ack.
			if !c.handleHello(f) {
				return consumed, false
			}
			i++
		case FrameLease, FrameHeartbeat, FrameFetch, FrameRevoke:
			h := c.srv.opts.Cluster
			if h == nil {
				c.enqueueFrame(appendErrorFrame(c.scratch(), f.Type, f.Seq, StatusInternal,
					fmt.Sprintf("cluster frame 0x%02x on a non-cluster server", f.Type)), 1)
				return consumed, false
			}
			count, body, status, msg := h.ClusterFrame(f.Type, f.Count, f.Body)
			if status != StatusOK {
				if !c.enqueueFrame(appendErrorFrame(c.scratch(), f.Type, f.Seq, status, msg), 1) {
					return consumed, false
				}
			} else if !c.enqueueFrame(AppendFrame(c.scratch(), f.Type, FlagResp, count, f.Seq, body), 1) {
				return consumed, false
			}
			i++
		default:
			c.enqueueFrame(appendErrorFrame(c.scratch(), f.Type, f.Seq, StatusInternal,
				fmt.Sprintf("unknown frame type 0x%02x", f.Type)), 1)
			return consumed, false
		}
	}
	return consumed, true
}

// scratch returns the per-connection response build buffer, reset.
func (c *serverConn) scratch() []byte {
	c.resp = c.resp[:0]
	return c.resp
}

// handleHello validates the version and answers with the class table.
func (c *serverConn) handleHello(f Frame) bool {
	if len(f.Body) < 4 || binary.LittleEndian.Uint32(f.Body) != ProtoVersion {
		c.enqueueFrame(appendErrorFrame(c.scratch(), FrameHello, f.Seq, StatusInternal, "unsupported protocol version"), 1)
		return false
	}
	body := c.respBody[:0]
	body = binary.LittleEndian.AppendUint32(body, ProtoVersion)
	for _, name := range c.srv.classes {
		body = append(body, byte(len(name)))
		body = append(body, name...)
	}
	c.respBody = body
	return c.enqueueFrame(AppendFrame(c.scratch(), FrameHello, FlagResp, uint16(len(c.srv.classes)), f.Seq, body), 1)
}

// checkUnits validates a batch-shaped frame's count against its body.
func checkUnits(f Frame, unitLen int) bool {
	return int(f.Count) <= MaxFrameOps && len(f.Body) == int(f.Count)*unitLen
}

// maxCoalesceOps caps the operations drained into one batch call.
// AdmitBatch registers a whole batch in one registry shard, so the cap
// matches the HTTP batch endpoint's — coalescing amortizes cost, it
// must not create outcomes (shard exhaustion) per-frame processing
// could not. Runs longer than the cap split at frame boundaries.
const maxCoalesceOps = MaxFrameOps

// handleAdmitRun drains one run of pipelined admit frames into as few
// AdmitBatch calls as the op cap allows (usually one) and answers
// each frame in order — the adaptive coalescing: depth follows
// whatever was in flight on the connection.
func (c *serverConn) handleAdmitRun(run []Frame) bool {
	for len(run) > 0 {
		c.items = c.items[:0]
		c.runLens = c.runLens[:0]
		c.runSeqs = c.runSeqs[:0]
		for len(run) > 0 && (len(c.runLens) == 0 || len(c.items)+int(run[0].Count) <= maxCoalesceOps) {
			f := run[0]
			if !checkUnits(f, admitReqUnitLen) {
				c.enqueueFrame(appendErrorFrame(c.scratch(), FrameAdmit, f.Seq, StatusInternal, "admit frame count/body mismatch"), 1)
				return false
			}
			for off := 0; off < len(f.Body); off += admitReqUnitLen {
				class := binary.LittleEndian.Uint32(f.Body[off:])
				src := binary.LittleEndian.Uint32(f.Body[off+4:])
				dst := binary.LittleEndian.Uint32(f.Body[off+8:])
				c.items = append(c.items, admission.BatchItem{
					Class: c.className(class),
					Src:   indexOf(src),
					Dst:   indexOf(dst),
				})
			}
			c.runLens = append(c.runLens, int(f.Count))
			c.runSeqs = append(c.runSeqs, f.Seq)
			run = run[1:]
		}
		if obs := c.srv.opts.Observer; obs != nil {
			obs.WireCoalesce(len(c.runLens), len(c.items))
		}
		c.results = c.srv.ctrl.AdmitBatch(c.items, c.results[:0])

		k := 0
		resp := c.scratch()
		for fi := range c.runLens {
			body := c.respBody[:0]
			for u := 0; u < c.runLens[fi]; u++ {
				r := c.results[k]
				k++
				body = binary.LittleEndian.AppendUint64(body, uint64(r.ID))
				body = binary.LittleEndian.AppendUint32(body, statusOf(r.Err))
			}
			c.respBody = body
			resp = AppendFrame(resp, FrameAdmit, FlagResp, uint16(c.runLens[fi]), c.runSeqs[fi], body)
		}
		c.resp = resp
		if !c.enqueueFrame(resp, len(c.runLens)) {
			return false
		}
	}
	return true
}

// handleTeardownRun coalesces a run of teardown frames into
// TeardownBatch calls, mirroring handleAdmitRun.
func (c *serverConn) handleTeardownRun(run []Frame) bool {
	for len(run) > 0 {
		c.tids = c.tids[:0]
		c.runLens = c.runLens[:0]
		c.runSeqs = c.runSeqs[:0]
		for len(run) > 0 && (len(c.runLens) == 0 || len(c.tids)+int(run[0].Count) <= maxCoalesceOps) {
			f := run[0]
			if !checkUnits(f, teardownUnitLen) {
				c.enqueueFrame(appendErrorFrame(c.scratch(), FrameTeardown, f.Seq, StatusInternal, "teardown frame count/body mismatch"), 1)
				return false
			}
			for off := 0; off < len(f.Body); off += teardownUnitLen {
				c.tids = append(c.tids, admission.FlowID(binary.LittleEndian.Uint64(f.Body[off:])))
			}
			c.runLens = append(c.runLens, int(f.Count))
			c.runSeqs = append(c.runSeqs, f.Seq)
			run = run[1:]
		}
		if obs := c.srv.opts.Observer; obs != nil {
			obs.WireCoalesce(len(c.runLens), len(c.tids))
		}
		c.terrs = c.srv.ctrl.TeardownBatch(c.tids, c.terrs[:0])

		k := 0
		resp := c.scratch()
		for fi := range c.runLens {
			body := c.respBody[:0]
			for u := 0; u < c.runLens[fi]; u++ {
				body = append(body, byte(statusOf(c.terrs[k])))
				k++
			}
			c.respBody = body
			resp = AppendFrame(resp, FrameTeardown, FlagResp, uint16(c.runLens[fi]), c.runSeqs[fi], body)
		}
		c.resp = resp
		if !c.enqueueFrame(resp, len(c.runLens)) {
			return false
		}
	}
	return true
}

// handleRoutes answers the configured (class, src, dst) tuples for one
// class index (or all), chunked at MaxFrameOps units per frame with
// FlagMore on every frame but the last.
func (c *serverConn) handleRoutes(f Frame) bool {
	if len(f.Body) != 4 {
		c.enqueueFrame(appendErrorFrame(c.scratch(), FrameRoutes, f.Seq, StatusInternal, "routes request body must be one u32"), 1)
		return false
	}
	want := binary.LittleEndian.Uint32(f.Body)
	first, last := 0, len(c.srv.classes)
	if want != AllClasses {
		if want >= uint32(len(c.srv.classes)) {
			c.enqueueFrame(appendErrorFrame(c.scratch(), FrameRoutes, f.Seq, StatusUnknownClass, "unknown class index"), 1)
			return true
		}
		first, last = int(want), int(want)+1
	}
	var units []RoutePair
	for ci := first; ci < last; ci++ {
		set, err := c.srv.ctrl.ClassRoutes(c.srv.classes[ci])
		if err != nil {
			continue
		}
		for i := 0; i < set.Len(); i++ {
			rt := set.Route(i)
			units = append(units, RoutePair{Class: uint32(ci), Src: uint32(rt.Src), Dst: uint32(rt.Dst)})
		}
	}
	for {
		chunk := units
		if len(chunk) > MaxFrameOps {
			chunk = chunk[:MaxFrameOps]
		}
		units = units[len(chunk):]
		body := c.respBody[:0]
		for _, u := range chunk {
			body = binary.LittleEndian.AppendUint32(body, u.Class)
			body = binary.LittleEndian.AppendUint32(body, u.Src)
			body = binary.LittleEndian.AppendUint32(body, u.Dst)
		}
		c.respBody = body
		flags := byte(FlagResp)
		if len(units) > 0 {
			flags |= FlagMore
		}
		if !c.enqueueFrame(AppendFrame(c.scratch(), FrameRoutes, flags, uint16(len(chunk)), f.Seq, body), 1) {
			return false
		}
		if len(units) == 0 {
			return true
		}
	}
}

// className maps a wire class index to its configured name; out of
// range yields "", which AdmitBatch rejects as ErrUnknownClass — the
// per-operation semantics fall out of the controller's own checks.
func (c *serverConn) className(idx uint32) string {
	if int64(idx) < int64(len(c.srv.classes)) {
		return c.srv.classes[idx]
	}
	return ""
}

// indexOf narrows a wire router index to int; values beyond int32 are
// folded to -1, which routeIndex rejects as ErrNoRoute.
func indexOf(v uint32) int {
	if v > math.MaxInt32 {
		return -1
	}
	return int(v)
}

// enqueueFrame stages an encoded response for the writer. It returns
// false — after dropping the connection — when the write queue bound
// is exceeded: a reader that stops draining responses does not get to
// grow server memory without limit.
func (c *serverConn) enqueueFrame(encoded []byte, frames int) bool {
	c.wmu.Lock()
	if c.wErr {
		c.wmu.Unlock()
		return false
	}
	if len(c.wbuf)+len(encoded) > c.srv.opts.MaxWriteBuffer {
		c.wErr = true
		c.wcond.Signal()
		c.wmu.Unlock()
		c.nc.Close() // unblocks a writer mid-Write as well
		return false
	}
	c.wbuf = append(c.wbuf, encoded...)
	c.wframes += frames
	c.wcond.Signal()
	c.wmu.Unlock()
	return true
}

// closeWriter asks the writer to flush remaining responses and exit,
// then waits for it.
func (c *serverConn) closeWriter() {
	c.wmu.Lock()
	c.wClosing = true
	c.wcond.Signal()
	c.wmu.Unlock()
	<-c.writerDone
}

// writeLoop flushes the response buffer: double-buffered like the
// WAL's syncer, so producers append into warm capacity while a write
// is in flight and the whole read pass's responses leave in one
// syscall.
func (c *serverConn) writeLoop() {
	defer close(c.writerDone)
	obs := c.srv.opts.Observer
	for {
		c.wmu.Lock()
		for len(c.wbuf) == 0 && !c.wClosing && !c.wErr {
			c.wcond.Wait()
		}
		if c.wErr || (len(c.wbuf) == 0 && c.wClosing) {
			c.wmu.Unlock()
			return
		}
		buf := c.wbuf
		frames := c.wframes
		c.wbuf = c.wspare[:0]
		c.wspare = nil
		c.wframes = 0
		c.wmu.Unlock()

		c.nc.SetWriteDeadline(time.Now().Add(c.srv.opts.WriteTimeout))
		_, err := c.nc.Write(buf)
		if err == nil && obs != nil {
			obs.WireWrite(frames, len(buf))
		}

		c.wmu.Lock()
		c.wspare = buf[:0]
		if err != nil {
			c.wErr = true
		}
		c.wmu.Unlock()
		if err != nil {
			c.nc.Close()
			return
		}
	}
}

// readFull is io.ReadFull without the io import dance for short reads
// on a net.Conn.
func readFull(nc net.Conn, b []byte) (int, error) {
	read := 0
	for read < len(b) {
		n, err := nc.Read(b[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
