package wire

import (
	"context"
	"net"
	"testing"
	"time"
)

// flakyServer serves a controller on one fixed loopback address and
// can be killed and revived there, simulating a peer that crashes and
// comes back.
type flakyServer struct {
	t    *testing.T
	addr string
	srv  *Server
	done chan error
}

func startFlaky(t *testing.T, backend Backend) *flakyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyServer{t: t, addr: ln.Addr().String()}
	f.serve(backend, ln)
	t.Cleanup(f.kill)
	return f
}

func (f *flakyServer) serve(backend Backend, ln net.Listener) {
	f.srv = NewServer(backend, Options{})
	f.done = make(chan error, 1)
	srv := f.srv
	done := f.done
	go func() { done <- srv.Serve(ln) }()
}

// kill drops the listener and every open connection.
func (f *flakyServer) kill() {
	if f.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = f.srv.Shutdown(ctx)
	<-f.done
	f.srv = nil
}

// revive re-listens on the same address. The kernel can keep the port
// briefly unavailable after the close, so retry for a while.
func (f *flakyServer) revive(backend Backend) {
	f.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", f.addr)
		if err == nil {
			f.serve(backend, ln)
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("re-listen on %s: %v", f.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientReconnect: a reconnecting client survives its server
// dying and coming back on the same address — calls fail fast while
// the server is down, then heal within the backoff cap without a new
// Dial.
func TestClientReconnect(t *testing.T) {
	ctrl := newTestController(t)
	f := startFlaky(t, ctrl)

	c, err := Dial(ClientOptions{
		Addr:         f.addr,
		Conns:        1,
		Timeout:      2 * time.Second,
		Reconnect:    true,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pairs, err := c.Routes(AllClasses)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no routes")
	}
	req := []AdmitReq{{Class: pairs[0].Class, Src: pairs[0].Src, Dst: pairs[0].Dst}}

	res, err := c.Admit(req, nil)
	if err != nil || res[0].Status != StatusOK {
		t.Fatalf("admit while up: %v status %d", err, res[0].Status)
	}
	ids := []uint64{res[0].ID}

	// Server dies: calls must fail (fast once the drop is noticed),
	// not hang.
	f.kill()
	failed := false
	for i := 0; i < 50 && !failed; i++ {
		if _, err := c.Admit(req, res); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no call failed while the server was down")
	}

	// Server returns on the same address: the client must heal within
	// a few backoff cycles, on the same handle.
	f.revive(ctrl)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = c.Admit(req, res)
		if err == nil && res[0].Status == StatusOK {
			ids = append(ids, res[0].ID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client did not heal: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the healed connection is fully functional, not a one-shot.
	if _, err := c.Teardown(ids[len(ids)-1:], nil); err != nil {
		t.Fatalf("teardown after heal: %v", err)
	}
}

// TestClientNoReconnectFailsFast: without Reconnect, a dead server
// poisons the client permanently — the documented contrast.
func TestClientNoReconnectFailsFast(t *testing.T) {
	ctrl := newTestController(t)
	f := startFlaky(t, ctrl)

	c, err := Dial(ClientOptions{Addr: f.addr, Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Routes(AllClasses); err != nil {
		t.Fatal(err)
	}

	f.kill()
	f.revive(ctrl)

	// Even with the server back, every call keeps failing: the client
	// was built without Reconnect and never redials.
	deadline := time.Now().Add(500 * time.Millisecond)
	healed := false
	for time.Now().Before(deadline) {
		if _, err := c.Routes(AllClasses); err == nil {
			healed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if healed {
		t.Fatal("non-reconnecting client healed; want permanent failure")
	}
}
