package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestVerdictStringsAndReasons(t *testing.T) {
	cases := []struct {
		v       Verdict
		s, r    string
		rejects bool
	}{
		{Admitted, "admit", "", false},
		{TornDown, "teardown", "", false},
		{RejectedCapacity, "reject", "capacity", true},
		{RejectedNoRoute, "reject", "no_route", true},
		{RejectedUnknownClass, "reject", "unknown_class", true},
	}
	for _, c := range cases {
		if c.v.String() != c.s || c.v.Reason() != c.r || c.v.Rejected() != c.rejects {
			t.Errorf("verdict %d: got (%q,%q,%v), want (%q,%q,%v)",
				c.v, c.v.String(), c.v.Reason(), c.v.Rejected(), c.s, c.r, c.rejects)
		}
	}
}

func TestActive(t *testing.T) {
	if Active(nil) || Active(Nop{}) {
		t.Error("nil/Nop must be inactive")
	}
	if !Active(NewRegistrySink(NewRegistry(), nil)) {
		t.Error("RegistrySink must be active")
	}
}

// TestConcurrentCountersAndHistogram hammers one counter, gauge, and
// histogram from many goroutines; run under -race this is the lock-free
// safety test, and the totals check the arithmetic.
func TestConcurrentCountersAndHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i%1000) * time.Nanosecond)
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", Label{"reason", "capacity"})
	b := reg.Counter("x_total", "x", Label{"reason", "capacity"})
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	other := reg.Counter("x_total", "x", Label{"reason", "no_route"})
	if a == other {
		t.Error("different labels must return different counters")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

// TestPrometheusGolden locks the exposition format: deterministic
// operations, full-output comparison.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ubac_admit_total", "Flows admitted.").Add(3)
	reg.Counter("ubac_reject_total", "Flows rejected, by reason.", Label{"reason", "capacity"}).Add(2)
	reg.Counter("ubac_reject_total", "Flows rejected, by reason.", Label{"reason", "no_route"}).Inc()
	reg.Gauge("ubac_active_flows", "Currently admitted flows.").Set(3)
	h := reg.Histogram("tiny_seconds", "Tiny two-bucket demo.")
	h.Observe(1 * time.Nanosecond) // bucket 1 (le 2e-09)
	h.Observe(3 * time.Nanosecond) // bucket 2 (le 4e-09)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	want := `# HELP tiny_seconds Tiny two-bucket demo.
# TYPE tiny_seconds histogram
tiny_seconds_bucket{le="1e-09"} 0
tiny_seconds_bucket{le="2e-09"} 1
tiny_seconds_bucket{le="4e-09"} 2
tiny_seconds_bucket{le="8e-09"} 2
`
	if !strings.Contains(out, want) {
		t.Errorf("histogram exposition mismatch; output:\n%s", out)
	}
	for _, line := range []string{
		"# HELP ubac_admit_total Flows admitted.",
		"# TYPE ubac_admit_total counter",
		"ubac_admit_total 3",
		"# TYPE ubac_reject_total counter",
		`ubac_reject_total{reason="capacity"} 2`,
		`ubac_reject_total{reason="no_route"} 1`,
		"# TYPE ubac_active_flows gauge",
		"ubac_active_flows 3",
		`tiny_seconds_bucket{le="+Inf"} 2`,
		"tiny_seconds_sum 4e-09",
		"tiny_seconds_count 2",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing exposition line %q; output:\n%s", line, out)
		}
	}
	// Families sorted by name: ubac_active_flows before ubac_admit_total?
	// No — "active" < "admit" lexically; just assert deterministic order
	// by re-rendering.
	var sb2 strings.Builder
	if err := reg.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition output is not deterministic")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Nanosecond) // bucket 7, le 128ns
	}
	h.Observe(10 * time.Microsecond) // the single max
	if q := h.Quantile(0.5); q != 128*time.Nanosecond {
		t.Errorf("p50 = %v, want 128ns", q)
	}
	if q := h.Quantile(1); q != 10*time.Microsecond {
		t.Errorf("p100 = %v, want clamped max 10µs", q)
	}
	if h.Max() != 10*time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	if h.Mean() == 0 {
		t.Error("mean = 0")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 1; i <= 20; i++ {
		r.Append(Event{FlowID: uint64(i)})
	}
	if r.Total() != 20 {
		t.Errorf("total = %d", r.Total())
	}
	evs := r.Snapshot(0)
	if len(evs) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(evs))
	}
	// Newest first: seq 20 down to 13.
	for i, ev := range evs {
		want := uint64(20 - i)
		if ev.Seq != want || ev.FlowID != want {
			t.Errorf("evs[%d] = seq %d flow %d, want %d", i, ev.Seq, ev.FlowID, want)
		}
	}
	if got := r.Snapshot(3); len(got) != 3 || got[0].Seq != 20 {
		t.Errorf("limited snapshot = %+v", got)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(1024)
	r.Append(Event{Class: "voice"})
	evs := r.Snapshot(100)
	if len(evs) != 1 || evs[0].Seq != 1 || evs[0].Class != "voice" {
		t.Errorf("snapshot = %+v", evs)
	}
	if len(NewRing(4).Snapshot(0)) != 0 {
		t.Error("empty ring snapshot must be empty")
	}
}

// TestRingConcurrent is the -race test for lock-free append/snapshot.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Append(Event{FlowID: uint64(w*5000 + i), Verdict: "admit"})
			}
		}(w)
	}
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot(0) {
				if ev.Verdict != "admit" {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snaps.Wait()
	if r.Total() != 20000 {
		t.Errorf("total = %d", r.Total())
	}
	evs := r.Snapshot(0)
	if len(evs) != 64 {
		t.Errorf("final snapshot len = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq >= evs[i-1].Seq {
			t.Errorf("snapshot not newest-first at %d: %d >= %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestRegistrySinkDecisions checks the counter/histogram/ring fan-out of
// each verdict.
func TestRegistrySinkDecisions(t *testing.T) {
	reg := NewRegistry()
	ring := NewRing(16)
	s := NewRegistrySink(reg, ring)
	s.Decision(Decision{FlowID: 1, Class: "voice", Src: 0, Dst: 3, Rate: 32e3,
		Verdict: Admitted, Bottleneck: -1, Latency: 100 * time.Nanosecond})
	s.Decision(Decision{Class: "voice", Src: 0, Dst: 3, Rate: 32e3,
		Verdict: RejectedCapacity, Bottleneck: 7, Latency: 80 * time.Nanosecond})
	s.Decision(Decision{Class: "voice", Src: 0, Dst: 0, Verdict: RejectedNoRoute, Bottleneck: -1})
	s.Decision(Decision{Class: "nope", Verdict: RejectedUnknownClass, Bottleneck: -1})
	s.Decision(Decision{FlowID: 1, Class: "voice", Src: 0, Dst: 3, Verdict: TornDown, Bottleneck: -1})

	if s.Admit.Value() != 1 || s.Teardown.Value() != 1 {
		t.Errorf("admit=%d teardown=%d", s.Admit.Value(), s.Teardown.Value())
	}
	if s.RejectCapacity.Value() != 1 || s.RejectNoRoute.Value() != 1 || s.RejectUnknownClass.Value() != 1 {
		t.Error("reject counters wrong")
	}
	if s.ActiveFlows.Value() != 0 {
		t.Errorf("active = %d, want 0", s.ActiveFlows.Value())
	}
	if s.AdmissionLatency.Count() != 4 { // teardown not observed
		t.Errorf("latency count = %d, want 4", s.AdmissionLatency.Count())
	}
	evs := ring.Snapshot(0)
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Verdict != "teardown" || evs[4].Verdict != "admit" {
		t.Errorf("event order wrong: %+v", evs)
	}
	if evs[3].Reason != "capacity" || evs[3].Bottleneck != 7 {
		t.Errorf("capacity event = %+v", evs[3])
	}

	s.FixedPoint(FixedPoint{Class: "voice", Iterations: 12, Converged: true, Elapsed: time.Millisecond})
	s.FixedPoint(FixedPoint{Class: "voice", Iterations: 4000, Converged: false, Elapsed: time.Millisecond})
	if s.FixedPointIterations.Value() != 4012 {
		t.Errorf("fp iterations = %d", s.FixedPointIterations.Value())
	}
	if s.FixedPointConverged.Value() != 1 || s.FixedPointDiverged.Value() != 1 {
		t.Error("fp run counters wrong")
	}

	s.SimRun(SimRun{Generated: 10, Delivered: 9, Policed: 1, Late: 2})
	if s.SimGenerated.Value() != 10 || s.SimDelivered.Value() != 9 ||
		s.SimPoliced.Value() != 1 || s.SimLate.Value() != 2 {
		t.Error("sim counters wrong")
	}

	s.RouteSelect(RouteSelect{Selector: "heuristic", PairsRouted: 5, PairsTotal: 5,
		Candidates: 42, Safe: true, Elapsed: 2 * time.Millisecond})
	s.RouteSelect(RouteSelect{Selector: "sp", PairsRouted: 3, PairsTotal: 5,
		Candidates: 0, Safe: false, Elapsed: time.Millisecond})
	if s.RouteSelectDuration.Count() != 2 {
		t.Errorf("select duration count = %d, want 2", s.RouteSelectDuration.Count())
	}
	if s.RouteSelectCandidates.Value() != 42 {
		t.Errorf("select candidates = %d, want 42", s.RouteSelectCandidates.Value())
	}
}
