package telemetry

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// histBuckets spans 1 ns to 2^39 ns (~550 s) in power-of-two buckets —
// far beyond any admission decision or fixed-point solve. Larger
// observations clamp into the last finite bucket.
const histBuckets = 40

// Histogram counts duration observations in fixed power-of-two
// nanosecond buckets. Observe is a few atomic adds — safe for the
// admission hot path — and never allocates. The exposition maps bucket
// k to the Prometheus upper bound le = 2^k ns (in seconds).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a nanosecond value to its bucket: 0 → 0, and values in
// [2^(k−1), 2^k) → k, so every value in bucket k is < 2^k ns.
func bucketOf(ns int64) int {
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNS.Load()) / n)
}

// Quantile returns an upper estimate of the p-quantile (p in [0,1]) at
// bucket resolution: the upper edge 2^k ns of the bucket holding the
// target rank (within 2x of the true value), clamped to Max. Zero when
// empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(n))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= target {
			edge := time.Duration(int64(1) << uint(b))
			if max := h.Max(); edge > max {
				edge = max
			}
			return edge
		}
	}
	return h.Max()
}

// writePrometheus renders the histogram as cumulative _bucket series
// plus _sum and _count, with bucket bounds in seconds. Extra labels
// (already rendered as {k="v"}) are merged with le.
func (h *Histogram) writePrometheus(b *strings.Builder, name, labels string) {
	le := func(bound string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", bound)
		}
		return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", bound)
	}
	var cum uint64
	for k := 0; k < histBuckets; k++ {
		cum += h.buckets[k].Load()
		bound := formatFloat(float64(int64(1)<<uint(k)) / 1e9)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, le(bound), cum)
	}
	// All observations land in finite buckets, so cum is the count; using
	// it for +Inf and _count keeps the series monotone even mid-update.
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, le("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.sumNS.Load())/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}
