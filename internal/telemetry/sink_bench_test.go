package telemetry

import (
	"testing"
	"time"
)

// BenchmarkSinkDecision is the per-decision telemetry cost every
// admission pays when a sink is installed — the daemon-side overhead
// on top of the admission test itself, so it has to stay far below
// the ~90 ns admit.
func BenchmarkSinkDecision(b *testing.B) {
	s := NewRegistrySink(NewRegistry(), NewRing(4096))
	d := Decision{
		FlowID:  1,
		Class:   "voice",
		Src:     3,
		Dst:     7,
		Rate:    64_000,
		Verdict: Admitted,
		Latency: 250 * time.Nanosecond,
		When:    time.Now(), // the controller always passes its clock read
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.FlowID = uint64(i)
		s.Decision(d)
	}
}

// BenchmarkRingAppend isolates the audit ring's share of the decision
// path.
func BenchmarkRingAppend(b *testing.B) {
	r := NewRing(4096)
	ev := Event{Class: "voice", Src: 3, Dst: 7, Verdict: "admitted"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.FlowID = uint64(i)
		r.Append(ev)
	}
}
