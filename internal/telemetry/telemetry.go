// Package telemetry is the observability layer of the admission-control
// system: a dependency-free metrics registry (atomic counters, gauges,
// and fixed-bucket lock-free histograms), a bounded lock-free ring
// buffer of structured admission decision events, and a Sink interface
// that the admission controller, the delay solver, the signaling plane,
// and the simulator all emit into.
//
// The paper's pitch is that run-time admission is O(path length) with no
// per-flow state in the core; this package exists to make that property
// observable in production without giving it up. Every recording
// operation on the hot path is a handful of atomic adds — no locks, no
// allocation in the registry, one small allocation per ring event — and
// the default Nop sink keeps the zero-telemetry paths exactly as cheap
// as before (emitters skip timestamping entirely when Active reports
// false).
package telemetry

import "time"

// Verdict classifies one admission decision event.
type Verdict uint8

const (
	// Admitted means the utilization test passed on every hop.
	Admitted Verdict = iota
	// RejectedCapacity means some server on the route lacked headroom.
	RejectedCapacity
	// RejectedNoRoute means the configuration has no route for the pair.
	RejectedNoRoute
	// RejectedUnknownClass means the class name is not configured.
	RejectedUnknownClass
	// TornDown means an admitted flow released its reservations.
	TornDown
	// RejectedPolicyRate means the admission policy's token bucket had
	// insufficient tokens for the tenant.
	RejectedPolicyRate
	// RejectedPolicyShed means the SLO gate shed the flow under
	// cluster load.
	RejectedPolicyShed
	// RejectedPolicyReserve means admitting would eat into a capacity
	// reserve held for protected traffic.
	RejectedPolicyReserve
)

// String returns the verdict for event output ("admit", "reject",
// "teardown").
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admit"
	case TornDown:
		return "teardown"
	default:
		return "reject"
	}
}

// Rejected reports whether the verdict is any rejection.
func (v Verdict) Rejected() bool {
	return v != Admitted && v != TornDown
}

// Reason returns the machine-readable rejection reason ("capacity",
// "no_route", "unknown_class", "policy_token_bucket", "policy_shed",
// "policy_reserve"), or "" for non-rejections.
func (v Verdict) Reason() string {
	switch v {
	case RejectedCapacity:
		return "capacity"
	case RejectedNoRoute:
		return "no_route"
	case RejectedUnknownClass:
		return "unknown_class"
	case RejectedPolicyRate:
		return "policy_token_bucket"
	case RejectedPolicyShed:
		return "policy_shed"
	case RejectedPolicyReserve:
		return "policy_reserve"
	default:
		return ""
	}
}

// Decision is one run-time admission control decision (admit, reject,
// or teardown), emitted by admission.Controller and signaling.Network.
type Decision struct {
	// FlowID is the admitted (or torn down) flow's ID; 0 on rejection.
	FlowID uint64
	// Class is the traffic class name as requested.
	Class string
	// Tenant is the requesting tenant ("" when the deployment does not
	// segment tenants).
	Tenant string
	// Src and Dst are router indexes (-1 when unresolved).
	Src, Dst int
	// Rate is the per-flow reserved rate in bits/second (0 if the class
	// is unknown).
	Rate float64
	// Verdict is the decision outcome.
	Verdict Verdict
	// Bottleneck is the link-server index that failed the utilization
	// test (RejectedCapacity only); -1 otherwise.
	Bottleneck int
	// Latency is the decision wall time.
	Latency time.Duration
	// When is the decision timestamp. Producers that already hold the
	// clock (the controller reads it to compute Latency) pass it so the
	// sink does not call time.Now again per decision; when zero the
	// sink stamps the event itself.
	When time.Time
}

// FixedPoint describes one run of the configuration-time delay
// fixed-point iteration d = Z(d), emitted by delay.Model.
type FixedPoint struct {
	// Class is the traffic class being solved.
	Class string
	// Iterations is the number of outer iterations performed.
	Iterations int
	// Converged reports whether a fixed point was reached.
	Converged bool
	// Elapsed is the solve wall time.
	Elapsed time.Duration
}

// RouteSelect describes one configuration-time route-selection run,
// emitted by the routing selectors (the Portfolio's members each emit
// their own event; the portfolio itself does not, so candidate totals
// are never double-counted).
type RouteSelect struct {
	// Selector names the selector that ran ("heuristic", "sp", ...).
	Selector string
	// PairsRouted and PairsTotal count selection progress.
	PairsRouted, PairsTotal int
	// Candidates is the number of candidate evaluations (fixed-point
	// solves) the search performed.
	Candidates int
	// Safe reports whether the selected configuration verified.
	Safe bool
	// Elapsed is the selection wall time.
	Elapsed time.Duration
}

// RouteCache carries route-delay cache lookup outcomes, emitted by
// routes.DelayCache as deltas (one event per lookup batch; the sink
// accumulates totals).
type RouteCache struct {
	// Hits counts lookups served from the cached epoch.
	Hits uint64
	// Misses counts lookups that forced a recomputation of the
	// per-route sums (first use after an Invalidate).
	Misses uint64
}

// SimRun carries the aggregate outcome of one simulator run, emitted by
// sim.Sim.
type SimRun struct {
	// Generated, Delivered, Policed, and Late are packet totals across
	// all classes.
	Generated, Delivered, Policed, Late uint64
	// MaxQueueing is the worst end-to-end queueing delay in seconds.
	MaxQueueing float64
	// Duration is the simulated time span in seconds.
	Duration float64
}

// Sink receives telemetry from the system's components. Implementations
// must be safe for concurrent use; RegistrySink records into a Registry
// and an event Ring, and Nop discards everything.
type Sink interface {
	Decision(Decision)
	FixedPoint(FixedPoint)
	RouteSelect(RouteSelect)
	RouteCache(RouteCache)
	SimRun(SimRun)
}

// Nop is the default sink: it discards all telemetry. Emitters that
// check Active skip even the timestamping work when it is installed.
type Nop struct{}

// Decision implements Sink.
func (Nop) Decision(Decision) {}

// FixedPoint implements Sink.
func (Nop) FixedPoint(FixedPoint) {}

// RouteSelect implements Sink.
func (Nop) RouteSelect(RouteSelect) {}

// RouteCache implements Sink.
func (Nop) RouteCache(RouteCache) {}

// SimRun implements Sink.
func (Nop) SimRun(SimRun) {}

// Active reports whether s records anything — false for nil and Nop.
// Hot paths use it to skip time.Now calls and event construction when
// telemetry is off.
func Active(s Sink) bool {
	if s == nil {
		return false
	}
	_, nop := s.(Nop)
	return !nop
}
