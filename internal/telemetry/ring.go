package telemetry

import "sync/atomic"

// Event is one recorded admission decision, as kept in the ring and
// served by the daemon's /v1/events endpoint. Src, Dst, and Bottleneck
// are raw indexes; the daemon resolves them to names at serving time.
type Event struct {
	Seq          uint64  `json:"seq"`
	TimeUnixNano int64   `json:"time_unix_nano"`
	FlowID       uint64  `json:"flow_id,omitempty"`
	Class        string  `json:"class"`
	Tenant       string  `json:"tenant,omitempty"`
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	RateBPS      float64 `json:"rate_bps"`
	Verdict      string  `json:"verdict"`
	Reason       string  `json:"reason,omitempty"`
	Bottleneck   int     `json:"bottleneck"`
	LatencyNS    int64   `json:"latency_ns"`
}

// Ring is a bounded ring buffer of Events. Append is lock-free (one
// atomic ticket fetch plus one atomic pointer store; the oldest event
// is overwritten when full) and Snapshot is a lock-free read — it never
// blocks writers and never sees a torn event.
type Ring struct {
	mask  uint64
	next  atomic.Uint64 // tickets issued; ticket t lives in slot (t-1)&mask
	slots []atomic.Pointer[Event]
}

// NewRing returns a ring holding at least capacity events (rounded up
// to a power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total returns how many events have ever been appended (appends whose
// slot store is still in flight included).
func (r *Ring) Total() uint64 { return r.next.Load() }

// Append records ev, stamping its Seq (1-based, monotonically
// increasing), and returns that sequence number.
func (r *Ring) Append(ev Event) uint64 {
	t := r.next.Add(1)
	ev.Seq = t
	r.slots[(t-1)&r.mask].Store(&ev)
	return t
}

// Snapshot returns up to limit of the most recent events, newest first.
// Events being overwritten or still in flight during the scan are
// skipped, never returned torn. limit <= 0 means the full ring.
func (r *Ring) Snapshot(limit int) []Event {
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	head := r.next.Load()
	out := make([]Event, 0, limit)
	for t := head; t > 0 && len(out) < limit; t-- {
		if head-t >= uint64(n) {
			break // older tickets are overwritten
		}
		ev := r.slots[(t-1)&r.mask].Load()
		// The slot may still hold an older lap's event (this lap's store
		// in flight) or already a newer one; Seq tells.
		if ev != nil && ev.Seq == t {
			out = append(out, *ev)
		}
	}
	return out
}
