package telemetry

import "sync/atomic"

// Event is one recorded admission decision, as kept in the ring and
// served by the daemon's /v1/events endpoint. Src, Dst, and Bottleneck
// are raw indexes; the daemon resolves them to names at serving time.
type Event struct {
	Seq          uint64  `json:"seq"`
	TimeUnixNano int64   `json:"time_unix_nano"`
	FlowID       uint64  `json:"flow_id,omitempty"`
	Class        string  `json:"class"`
	Tenant       string  `json:"tenant,omitempty"`
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	RateBPS      float64 `json:"rate_bps"`
	Verdict      string  `json:"verdict"`
	Reason       string  `json:"reason,omitempty"`
	Bottleneck   int     `json:"bottleneck"`
	LatencyNS    int64   `json:"latency_ns"`
}

// ringChunkEvents is the chunk granularity: one allocation covers this
// many appends, so the per-event malloc the old pointer-per-slot layout
// paid (measurably the largest line in the decision path at wire-
// transport rates) amortizes to 1/64th.
const ringChunkEvents = 64

// eventChunk is a write-once block of consecutive tickets. Slot i of
// the chunk with id k holds ticket k*csize+i+1, written exactly once by
// that ticket's owner: the event is plain-written, then the slot's
// stamp is release-stored. A reader that observes stamps[i] == t
// therefore sees evs[i] fully written, and — because no slot is ever
// rewritten in place — can never see it torn.
type eventChunk struct {
	id     uint64
	stamps [ringChunkEvents]atomic.Uint64
	evs    [ringChunkEvents]Event
}

// Ring is a bounded ring buffer of Events. Append is lock-free (one
// atomic ticket fetch, an amortized chunk install, one atomic stamp
// store; the oldest events are overwritten when full) and Snapshot is a
// lock-free read — it never blocks writers and never sees a torn event.
type Ring struct {
	cap   uint64        // capacity in events (power of two)
	csize uint64        // events per chunk: min(ringChunkEvents, cap)
	next  atomic.Uint64 // tickets issued; ticket t has chunk index (t-1)/csize
	// chunks maps chunk index cidx to slot cidx % len(chunks). It holds
	// 2x the chunks the capacity needs, so a chunk is only displaced
	// once every ticket it holds is already outside the Snapshot
	// window — a single new append never invalidates a whole block of
	// still-current events at the window edge.
	chunks []atomic.Pointer[eventChunk]
}

// NewRing returns a ring holding at least capacity events (rounded up
// to a power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	csize := uint64(ringChunkEvents)
	if csize > n {
		csize = n
	}
	return &Ring{cap: n, csize: csize, chunks: make([]atomic.Pointer[eventChunk], 2*n/csize)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return int(r.cap) }

// Total returns how many events have ever been appended (appends whose
// slot store is still in flight included).
func (r *Ring) Total() uint64 { return r.next.Load() }

// Append records ev, stamping its Seq (1-based, monotonically
// increasing), and returns that sequence number.
func (r *Ring) Append(ev Event) uint64 {
	t := r.next.Add(1)
	ev.Seq = t
	cidx := (t - 1) / r.csize
	slot := &r.chunks[cidx%uint64(len(r.chunks))]
	ch := slot.Load()
	for ch == nil || ch.id != cidx {
		if ch != nil && ch.id > cidx {
			// Lapped: head has advanced ≥ 2*cap tickets past t while this
			// writer stalled, so t is far outside the Snapshot window and
			// the event would never be returned anyway. Drop the write
			// rather than clobber the live chunk.
			return t
		}
		fresh := &eventChunk{id: cidx}
		if slot.CompareAndSwap(ch, fresh) {
			ch = fresh
			break
		}
		ch = slot.Load()
	}
	i := (t - 1) % r.csize
	ch.evs[i] = ev
	ch.stamps[i].Store(t)
	return t
}

// Snapshot returns up to limit of the most recent events, newest first.
// Events being overwritten or still in flight during the scan are
// skipped, never returned torn. limit <= 0 means the full ring.
func (r *Ring) Snapshot(limit int) []Event {
	n := int(r.cap)
	if limit <= 0 || limit > n {
		limit = n
	}
	head := r.next.Load()
	out := make([]Event, 0, limit)
	nchunks := uint64(len(r.chunks))
	for t := head; t > 0 && len(out) < limit; t-- {
		if head-t >= r.cap {
			break // older tickets are overwritten
		}
		cidx := (t - 1) / r.csize
		ch := r.chunks[cidx%nchunks].Load()
		// The slot may hold an older or newer lap's chunk (this ticket's
		// install or displacement in flight); id tells. Within the right
		// chunk, the stamp tells whether the event write has landed.
		if ch == nil || ch.id != cidx {
			continue
		}
		i := (t - 1) % r.csize
		if ch.stamps[i].Load() == t {
			out = append(out, ch.evs[i])
		}
	}
	return out
}
