package telemetry

import (
	"sync"
	"time"
)

// Standard metric names exposed by RegistrySink (and scraped off the
// daemon's /metrics endpoint).
const (
	MetricAdmitTotal         = "ubac_admit_total"
	MetricRejectTotal        = "ubac_reject_total" // labeled {reason=...}
	MetricTeardownTotal      = "ubac_teardown_total"
	MetricActiveFlows        = "ubac_active_flows"
	MetricAdmissionLatency   = "ubac_admission_latency_seconds"
	MetricFixedPointIter     = "ubac_fixedpoint_iterations"
	MetricFixedPointRuns     = "ubac_fixedpoint_runs_total" // labeled {converged=...}
	MetricFixedPointDuration = "ubac_fixedpoint_duration_seconds"
	MetricRouteCacheLookups  = "ubac_route_cache_lookups_total" // labeled {result=...}
	MetricRouteSelectSeconds = "ubac_routing_select_seconds"
	MetricRouteCandidates    = "ubac_routing_candidates_total"
	MetricSimGeneratedTotal  = "ubac_sim_packets_generated_total"
	MetricSimDeliveredTotal  = "ubac_sim_packets_delivered_total"
	MetricSimPolicedTotal    = "ubac_sim_packets_policed_total"
	MetricSimLateTotal       = "ubac_sim_packets_late_total"
	MetricClassAdmitTotal    = "ubac_class_admit_total"  // labeled {class=...}
	MetricClassRejectTotal   = "ubac_class_reject_total" // labeled {class=...}
	MetricEventsTotal        = "ubac_events_total"
	MetricWALAppends         = "ubac_wal_appends_total"
	MetricWALFsyncs          = "ubac_wal_fsyncs_total"
	MetricWALSyncSeconds     = "ubac_wal_sync_seconds"
	MetricWALRecoveryTotal   = "ubac_wal_recovery_replayed_total" // labeled {kind=...}
	MetricWireConnsTotal     = "ubac_wire_connections_total"
	MetricWireConnsActive    = "ubac_wire_connections_active"
	MetricWireFramesTotal    = "ubac_wire_frames_total" // labeled {dir=rx|tx}
	MetricWireBytesTotal     = "ubac_wire_bytes_total"  // labeled {dir=rx|tx}
	MetricWireBatchesTotal   = "ubac_wire_coalesced_batches_total"
	MetricWireBatchOpsTotal  = "ubac_wire_coalesced_ops_total"

	MetricClusterAdmitsTotal     = "ubac_cluster_lease_admits_total" // labeled {path=local|sync}
	MetricClusterGrantsTotal     = "ubac_cluster_grants_total"
	MetricClusterGrantSeconds    = "ubac_cluster_grant_seconds"
	MetricClusterReplicationLag  = "ubac_cluster_replication_lag_bytes"
	MetricClusterRoleTransitions = "ubac_cluster_role_transitions_total"
	MetricClusterHeartbeatMisses = "ubac_cluster_heartbeat_misses_total"
)

// RegistrySink records telemetry into a Registry and (optionally) an
// event Ring. All recording is lock-free; the metric fields are
// exported so embedders (the CLI's post-run summary, tests) can read
// them back without parsing the exposition format.
type RegistrySink struct {
	Admit               *Counter
	RejectCapacity      *Counter
	RejectNoRoute       *Counter
	RejectUnknownClass  *Counter
	RejectPolicyRate    *Counter
	RejectPolicyShed    *Counter
	RejectPolicyReserve *Counter
	Teardown            *Counter
	ActiveFlows         *Gauge
	AdmissionLatency    *Histogram

	FixedPointIterations *Counter
	FixedPointConverged  *Counter
	FixedPointDiverged   *Counter
	FixedPointDuration   *Histogram

	RouteCacheHits   *Counter
	RouteCacheMisses *Counter

	RouteSelectDuration   *Histogram
	RouteSelectCandidates *Counter

	SimGenerated *Counter
	SimDelivered *Counter
	SimPoliced   *Counter
	SimLate      *Counter

	Events *Counter

	WALAppends           *Counter
	WALFsyncs            *Counter
	WALSyncDuration      *Histogram
	WALRecoveryAdmits    *Counter
	WALRecoveryTeardowns *Counter

	WireConns       *Counter
	WireConnsActive *Gauge
	WireFramesRx    *Counter
	WireFramesTx    *Counter
	WireBytesRx     *Counter
	WireBytesTx     *Counter
	WireBatches     *Counter
	WireBatchOps    *Counter

	ClusterLocalAdmits     *Counter
	ClusterSyncAdmits      *Counter
	ClusterGrants          *Counter
	ClusterGrantDuration   *Histogram
	ClusterReplicationLag  *Gauge
	ClusterRoleTransitions *Counter
	ClusterHeartbeatMisses *Counter

	ring *Ring

	// Per-class decision counters are created lazily — class names are
	// only known at decision time — behind an RWMutex so the steady
	// state (class already registered) is two read-locked map lookups.
	reg        *Registry
	classMu    sync.RWMutex
	classAdmit map[string]*Counter
	classRej   map[string]*Counter
}

// NewRegistrySink registers the standard ubac_* metrics on reg (eagerly,
// so a scrape shows every family from the first request) and records
// decision events into ring (nil disables the audit trail).
func NewRegistrySink(reg *Registry, ring *Ring) *RegistrySink {
	return &RegistrySink{
		Admit: reg.Counter(MetricAdmitTotal, "Flows admitted by the utilization test."),
		RejectCapacity: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "capacity"}),
		RejectNoRoute: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "no_route"}),
		RejectUnknownClass: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "unknown_class"}),
		RejectPolicyRate: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "policy_token_bucket"}),
		RejectPolicyShed: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "policy_shed"}),
		RejectPolicyReserve: reg.Counter(MetricRejectTotal,
			"Flows rejected, by reason.", Label{"reason", "policy_reserve"}),
		Teardown:    reg.Counter(MetricTeardownTotal, "Admitted flows torn down."),
		ActiveFlows: reg.Gauge(MetricActiveFlows, "Currently admitted flows."),
		AdmissionLatency: reg.Histogram(MetricAdmissionLatency,
			"Admission decision wall time (admits and rejects)."),
		FixedPointIterations: reg.Counter(MetricFixedPointIter,
			"Total outer iterations of the delay fixed-point solver."),
		FixedPointConverged: reg.Counter(MetricFixedPointRuns,
			"Fixed-point solver runs, by outcome.", Label{"converged", "true"}),
		FixedPointDiverged: reg.Counter(MetricFixedPointRuns,
			"Fixed-point solver runs, by outcome.", Label{"converged", "false"}),
		FixedPointDuration: reg.Histogram(MetricFixedPointDuration,
			"Delay fixed-point solve wall time."),
		RouteCacheHits: reg.Counter(MetricRouteCacheLookups,
			"Route-delay cache lookups, by result.", Label{"result", "hit"}),
		RouteCacheMisses: reg.Counter(MetricRouteCacheLookups,
			"Route-delay cache lookups, by result.", Label{"result", "miss"}),
		RouteSelectDuration: reg.Histogram(MetricRouteSelectSeconds,
			"Route-selection wall time per selector run."),
		RouteSelectCandidates: reg.Counter(MetricRouteCandidates,
			"Candidate route evaluations (fixed-point solves) performed by route selection."),
		SimGenerated: reg.Counter(MetricSimGeneratedTotal, "Packets generated by the simulator."),
		SimDelivered: reg.Counter(MetricSimDeliveredTotal, "Packets delivered by the simulator."),
		SimPoliced:   reg.Counter(MetricSimPolicedTotal, "Packets dropped by edge policing in the simulator."),
		SimLate:      reg.Counter(MetricSimLateTotal, "Simulated packets that missed their deadline."),
		Events:       reg.Counter(MetricEventsTotal, "Decision events recorded (ring overwrites oldest)."),
		WALAppends: reg.Counter(MetricWALAppends,
			"Admission records staged for the write-ahead log."),
		WALFsyncs: reg.Counter(MetricWALFsyncs,
			"WAL group commits (one write+fsync each)."),
		WALSyncDuration: reg.Histogram(MetricWALSyncSeconds,
			"WAL group commit wall time (write+fsync)."),
		WALRecoveryAdmits: reg.Counter(MetricWALRecoveryTotal,
			"Records replayed from the WAL on boot, by kind.", Label{"kind", "admit"}),
		WALRecoveryTeardowns: reg.Counter(MetricWALRecoveryTotal,
			"Records replayed from the WAL on boot, by kind.", Label{"kind", "teardown"}),
		WireConns: reg.Counter(MetricWireConnsTotal,
			"Wire-transport connections accepted."),
		WireConnsActive: reg.Gauge(MetricWireConnsActive,
			"Wire-transport connections currently open."),
		WireFramesRx: reg.Counter(MetricWireFramesTotal,
			"Wire-transport frames, by direction.", Label{"dir", "rx"}),
		WireFramesTx: reg.Counter(MetricWireFramesTotal,
			"Wire-transport frames, by direction.", Label{"dir", "tx"}),
		WireBytesRx: reg.Counter(MetricWireBytesTotal,
			"Wire-transport payload bytes, by direction.", Label{"dir", "rx"}),
		WireBytesTx: reg.Counter(MetricWireBytesTotal,
			"Wire-transport payload bytes, by direction.", Label{"dir", "tx"}),
		WireBatches: reg.Counter(MetricWireBatchesTotal,
			"Coalesced admission batch calls made by the wire transport."),
		WireBatchOps: reg.Counter(MetricWireBatchOpsTotal,
			"Operations drained into coalesced wire batch calls (ops/batches = mean coalesce depth)."),
		ClusterLocalAdmits: reg.Counter(MetricClusterAdmitsTotal,
			"Cluster edge admissions, by path (local = answered from the leased budget with zero cross-node round trips).",
			Label{"path", "local"}),
		ClusterSyncAdmits: reg.Counter(MetricClusterAdmitsTotal,
			"Cluster edge admissions, by path (local = answered from the leased budget with zero cross-node round trips).",
			Label{"path", "sync"}),
		ClusterGrants: reg.Counter(MetricClusterGrantsTotal,
			"Lease grants issued by the authority (local and remote edges)."),
		ClusterGrantDuration: reg.Histogram(MetricClusterGrantSeconds,
			"Lease grant round-trip wall time observed by the requesting edge."),
		ClusterReplicationLag: reg.Gauge(MetricClusterReplicationLag,
			"Bytes of durable authority WAL not yet fetched by this follower."),
		ClusterRoleTransitions: reg.Counter(MetricClusterRoleTransitions,
			"Cluster role changes on this node (follower promotions, authority discoveries)."),
		ClusterHeartbeatMisses: reg.Counter(MetricClusterHeartbeatMisses,
			"Heartbeat probes that failed or timed out."),
		ring:       ring,
		reg:        reg,
		classAdmit: make(map[string]*Counter),
		classRej:   make(map[string]*Counter),
	}
}

// classCounter returns the per-class counter for metric (admit or
// reject), creating and registering it on first use of the class name.
func (s *RegistrySink) classCounter(cache map[string]*Counter, metric, help, class string) *Counter {
	s.classMu.RLock()
	c := cache[class]
	s.classMu.RUnlock()
	if c != nil {
		return c
	}
	s.classMu.Lock()
	defer s.classMu.Unlock()
	if c = cache[class]; c == nil {
		c = s.reg.Counter(metric, help, Label{"class", class})
		cache[class] = c
	}
	return c
}

// ClassAdmits returns the cumulative admit count for class (0 if the
// class has never been admitted) — a test and summary hook.
func (s *RegistrySink) ClassAdmits(class string) uint64 {
	s.classMu.RLock()
	defer s.classMu.RUnlock()
	if c := s.classAdmit[class]; c != nil {
		return c.Value()
	}
	return 0
}

// ClassRejects returns the cumulative reject count for class.
func (s *RegistrySink) ClassRejects(class string) uint64 {
	s.classMu.RLock()
	defer s.classMu.RUnlock()
	if c := s.classRej[class]; c != nil {
		return c.Value()
	}
	return 0
}

// WALAppend satisfies the wal package's Observer interface (records
// staged for durability).
func (s *RegistrySink) WALAppend(records, bytes int) {
	s.WALAppends.Add(uint64(records))
}

// WALSync satisfies the wal Observer interface (one group commit).
func (s *RegistrySink) WALSync(d time.Duration) {
	s.WALFsyncs.Inc()
	s.WALSyncDuration.Observe(d)
}

// WireConnOpened satisfies the wire package's Observer interface
// (one transport connection accepted).
func (s *RegistrySink) WireConnOpened() {
	s.WireConns.Inc()
	s.WireConnsActive.Add(1)
}

// WireConnClosed satisfies the wire Observer interface.
func (s *RegistrySink) WireConnClosed() { s.WireConnsActive.Add(-1) }

// WireRead satisfies the wire Observer interface (one read pass:
// decoded frames and consumed bytes).
func (s *RegistrySink) WireRead(frames, bytes int) {
	s.WireFramesRx.Add(uint64(frames))
	s.WireBytesRx.Add(uint64(bytes))
}

// WireWrite satisfies the wire Observer interface (responses flushed).
func (s *RegistrySink) WireWrite(frames, bytes int) {
	s.WireFramesTx.Add(uint64(frames))
	s.WireBytesTx.Add(uint64(bytes))
}

// WireCoalesce satisfies the wire Observer interface (one coalesced
// batch call draining `frames` pipelined frames carrying `ops`
// operations).
func (s *RegistrySink) WireCoalesce(frames, ops int) {
	s.WireBatches.Inc()
	s.WireBatchOps.Add(uint64(ops))
}

// ClusterAdmitLocal satisfies the cluster package's Observer interface:
// n edge admissions answered entirely from the local leased budget.
func (s *RegistrySink) ClusterAdmitLocal(n int) { s.ClusterLocalAdmits.Add(uint64(n)) }

// ClusterAdmitSync satisfies the cluster Observer interface: n
// admissions that had to make a synchronous grant round trip.
func (s *RegistrySink) ClusterAdmitSync(n int) { s.ClusterSyncAdmits.Add(uint64(n)) }

// ClusterGrant satisfies the cluster Observer interface: one lease
// grant round trip and its wall time.
func (s *RegistrySink) ClusterGrant(d time.Duration) {
	s.ClusterGrants.Inc()
	s.ClusterGrantDuration.Observe(d)
}

// ClusterLag satisfies the cluster Observer interface: this follower's
// current replication lag in bytes.
func (s *RegistrySink) ClusterLag(bytes int64) { s.ClusterReplicationLag.Set(bytes) }

// ClusterRoleChange satisfies the cluster Observer interface.
func (s *RegistrySink) ClusterRoleChange() { s.ClusterRoleTransitions.Inc() }

// ClusterHeartbeatMiss satisfies the cluster Observer interface.
func (s *RegistrySink) ClusterHeartbeatMiss() { s.ClusterHeartbeatMisses.Inc() }

// WALRecovered records a boot-time recovery's replay counts.
func (s *RegistrySink) WALRecovered(admits, teardowns uint64) {
	s.WALRecoveryAdmits.Add(admits)
	s.WALRecoveryTeardowns.Add(teardowns)
}

// Ring returns the sink's event ring (nil when the audit trail is off).
func (s *RegistrySink) Ring() *Ring { return s.ring }

// Decision implements Sink: it bumps the verdict counters, observes the
// admission latency for admits and rejects, and appends an audit event.
func (s *RegistrySink) Decision(d Decision) {
	switch d.Verdict {
	case Admitted:
		s.Admit.Inc()
		s.ActiveFlows.Add(1)
		s.AdmissionLatency.Observe(d.Latency)
	case TornDown:
		s.Teardown.Inc()
		s.ActiveFlows.Add(-1)
	case RejectedCapacity:
		s.RejectCapacity.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	case RejectedNoRoute:
		s.RejectNoRoute.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	case RejectedUnknownClass:
		s.RejectUnknownClass.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	case RejectedPolicyRate:
		s.RejectPolicyRate.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	case RejectedPolicyShed:
		s.RejectPolicyShed.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	case RejectedPolicyReserve:
		s.RejectPolicyReserve.Inc()
		s.AdmissionLatency.Observe(d.Latency)
	}
	if d.Class != "" {
		switch {
		case d.Verdict == Admitted:
			s.classCounter(s.classAdmit, MetricClassAdmitTotal,
				"Flows admitted, by traffic class.", d.Class).Inc()
		case d.Verdict.Rejected():
			s.classCounter(s.classRej, MetricClassRejectTotal,
				"Flows rejected, by traffic class.", d.Class).Inc()
		}
	}
	if s.ring != nil {
		s.Events.Inc()
		when := d.When
		if when.IsZero() {
			when = time.Now()
		}
		s.ring.Append(Event{
			TimeUnixNano: when.UnixNano(),
			FlowID:       d.FlowID,
			Class:        d.Class,
			Tenant:       d.Tenant,
			Src:          d.Src,
			Dst:          d.Dst,
			RateBPS:      d.Rate,
			Verdict:      d.Verdict.String(),
			Reason:       d.Verdict.Reason(),
			Bottleneck:   d.Bottleneck,
			LatencyNS:    d.Latency.Nanoseconds(),
		})
	}
}

// FixedPoint implements Sink.
func (s *RegistrySink) FixedPoint(fp FixedPoint) {
	s.FixedPointIterations.Add(uint64(fp.Iterations))
	if fp.Converged {
		s.FixedPointConverged.Inc()
	} else {
		s.FixedPointDiverged.Inc()
	}
	s.FixedPointDuration.Observe(fp.Elapsed)
}

// RouteSelect implements Sink.
func (s *RegistrySink) RouteSelect(rs RouteSelect) {
	s.RouteSelectDuration.Observe(rs.Elapsed)
	if rs.Candidates > 0 {
		s.RouteSelectCandidates.Add(uint64(rs.Candidates))
	}
}

// RouteCache implements Sink.
func (s *RegistrySink) RouteCache(rc RouteCache) {
	if rc.Hits > 0 {
		s.RouteCacheHits.Add(rc.Hits)
	}
	if rc.Misses > 0 {
		s.RouteCacheMisses.Add(rc.Misses)
	}
}

// SimRun implements Sink.
func (s *RegistrySink) SimRun(r SimRun) {
	s.SimGenerated.Add(r.Generated)
	s.SimDelivered.Add(r.Delivered)
	s.SimPoliced.Add(r.Policed)
	s.SimLate.Add(r.Late)
}
