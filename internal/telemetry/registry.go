package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair, e.g. {reason, capacity}.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind is the Prometheus family type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled time series inside a family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a lock; recording on the
// returned metrics is lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels produces the canonical {k="v",...} form, keys sorted.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series of (name, labels), creating family and
// series as needed. Re-registering with the same name and labels
// returns the existing metric; a kind mismatch panics (programmer
// error, like prometheus.MustRegister).
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	key := renderLabels(labels)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram()
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	}
	return s
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels).g
}

// Histogram registers (or finds) a histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, labels).h
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, families and series in deterministic (sorted)
// order. Values are read atomically but the scrape as a whole is not a
// consistent snapshot — standard for Prometheus instrumentation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindHistogram:
				s.h.writePrometheus(&b, f.name, s.labels)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
