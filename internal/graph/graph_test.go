package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func mustBoth(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddBoth(u, v); err != nil {
		t.Fatalf("AddBoth(%d,%d): %v", u, v, err)
	}
}

func TestNewAndGrow(t *testing.T) {
	g := New(3)
	if g.Order() != 3 || g.Size() != 0 {
		t.Fatalf("got order=%d size=%d, want 3,0", g.Order(), g.Size())
	}
	id := g.AddVertex()
	if id != 3 || g.Order() != 4 {
		t.Fatalf("AddVertex: got id=%d order=%d", id, g.Order())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	mustEdge(t, g, 0, 1)
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate arc accepted")
	}
	if g.Size() != 1 {
		t.Errorf("size = %d, want 1", g.Size())
	}
}

func TestHasEdgeAndDegrees(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 3, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(1); d != 2 {
		t.Errorf("InDegree(1) = %d, want 2", d)
	}
	degs := g.InDegrees()
	want := []int{0, 2, 1, 0}
	for i, w := range want {
		if degs[i] != w {
			t.Errorf("InDegrees[%d] = %d, want %d", i, degs[i], w)
		}
	}
	if g.MaxOutDegree() != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", g.MaxOutDegree())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Error("mutating clone affected original")
	}
	if c.Size() != 2 || g.Size() != 1 {
		t.Errorf("sizes: clone=%d orig=%d", c.Size(), g.Size())
	}
}

func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustBoth(t, g, i, i+1)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(t, 5)
	p, err := g.ShortestPath(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if !equalPath(p, want) {
		t.Errorf("path = %v, want %v", p, want)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := New(2)
	p, err := g.ShortestPath(1, 1)
	if err != nil || !equalPath(p, []int{1}) {
		t.Errorf("self path = %v err=%v", p, err)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	if _, err := g.ShortestPath(1, 0); err != ErrNoPath {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
	if _, err := g.ShortestPath(0, 2); err != ErrNoPath {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathBadVertex(t *testing.T) {
	g := New(2)
	if _, err := g.ShortestPath(0, 7); err == nil {
		t.Error("expected error for out-of-range dst")
	}
	if _, err := g.ShortestPath(-1, 0); err == nil {
		t.Error("expected error for out-of-range src")
	}
}

func TestDistances(t *testing.T) {
	g := lineGraph(t, 4)
	d := g.Distances(1)
	want := []int{1, 0, 1, 2}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
	if g.Distance(0, 3) != 3 {
		t.Errorf("Distance(0,3) = %d", g.Distance(0, 3))
	}
	if g.Distance(2, 2) != 0 {
		t.Errorf("Distance(2,2) = %d", g.Distance(2, 2))
	}
}

func TestDistanceUnreachable(t *testing.T) {
	g := New(2)
	if d := g.Distance(0, 1); d != -1 {
		t.Errorf("Distance = %d, want -1", d)
	}
}

func TestDiameterRing(t *testing.T) {
	n := 8
	g := New(n)
	for i := 0; i < n; i++ {
		mustBoth(t, g, i, (i+1)%n)
	}
	d, ok := g.Diameter()
	if !ok || d != 4 {
		t.Errorf("ring diameter = %d,%v, want 4,true", d, ok)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	mustBoth(t, g, 0, 1)
	if _, ok := g.Diameter(); ok {
		t.Error("disconnected graph reported connected")
	}
	if g.IsConnected() {
		t.Error("IsConnected true on disconnected graph")
	}
}

func TestHasCycle(t *testing.T) {
	dag := New(4)
	mustEdge(t, dag, 0, 1)
	mustEdge(t, dag, 1, 2)
	mustEdge(t, dag, 0, 2)
	mustEdge(t, dag, 2, 3)
	if dag.HasCycle() {
		t.Error("DAG reported cyclic")
	}
	mustEdge(t, dag, 3, 0)
	if !dag.HasCycle() {
		t.Error("cycle not detected")
	}
}

func TestHasCycleEmpty(t *testing.T) {
	if New(0).HasCycle() || New(5).HasCycle() {
		t.Error("edgeless graph reported cyclic")
	}
}

func TestTopoSort(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 1, 0)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 4, 2)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < g.Order(); u++ {
		for _, v := range g.Neighbors(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo order violates arc %d->%d: %v", u, v, order)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Error("expected cycle error")
	}
}

func TestKShortestPathsBasic(t *testing.T) {
	// Diamond: 0->1->3, 0->2->3, plus long route 0->4->5->3.
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 0, 4)
	mustEdge(t, g, 4, 5)
	mustEdge(t, g, 5, 3)
	paths, err := g.KShortestPaths(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths %v, want 3", len(paths), paths)
	}
	if len(paths[0]) != 3 || len(paths[1]) != 3 || len(paths[2]) != 4 {
		t.Errorf("path lengths wrong: %v", paths)
	}
	// Deterministic lexicographic tie-break between the two 2-hop paths.
	if !equalPath(paths[0], []int{0, 1, 3}) || !equalPath(paths[1], []int{0, 2, 3}) {
		t.Errorf("tie-break not deterministic: %v", paths)
	}
}

func TestKShortestPathsKZero(t *testing.T) {
	g := lineGraph(t, 3)
	paths, err := g.KShortestPaths(0, 2, 0)
	if err != nil || paths != nil {
		t.Errorf("k=0: got %v, %v", paths, err)
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := New(2)
	if _, err := g.KShortestPaths(0, 1, 3); err != ErrNoPath {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestKShortestPathsSimple(t *testing.T) {
	// All returned paths must be simple (no repeated vertex).
	n := 7
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (i+j)%2 == 0 || j == i+1 {
				mustBoth(t, g, i, j)
			}
		}
	}
	paths, err := g.KShortestPaths(0, n-1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected several paths, got %d", len(paths))
	}
	seen := make(map[string]bool)
	prevLen := 0
	for _, p := range paths {
		visited := make(map[int]bool)
		for _, v := range p {
			if visited[v] {
				t.Errorf("path %v revisits %d", p, v)
			}
			visited[v] = true
		}
		key := pathKey(p)
		if seen[key] {
			t.Errorf("duplicate path %v", p)
		}
		seen[key] = true
		if len(p) < prevLen {
			t.Errorf("paths not ordered by length: %v", paths)
		}
		prevLen = len(p)
		if p[0] != 0 || p[len(p)-1] != n-1 {
			t.Errorf("endpoints wrong in %v", p)
		}
	}
}

func pathKey(p []int) string {
	b := make([]byte, 0, len(p)*2)
	for _, v := range p {
		b = append(b, byte(v), ',')
	}
	return string(b)
}

// randomConnectedGraph builds an undirected connected graph on n vertices.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		_ = g.AddBoth(i, j)
	}
	extra := n / 2
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			_ = g.AddBoth(u, v)
		}
	}
	return g
}

// Property: the first path returned by KShortestPaths always has the BFS
// shortest-path length, and every path is at least that long.
func TestKShortestFirstIsShortestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomConnectedGraph(rng, n)
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			return true
		}
		sp, err := g.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		paths, err := g.KShortestPaths(src, dst, 5)
		if err != nil || len(paths) == 0 {
			return false
		}
		if len(paths[0]) != len(sp) {
			return false
		}
		for _, p := range paths {
			if len(p) < len(sp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Diameter equals the max over Distances of every source.
func TestDiameterMatchesDistancesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomConnectedGraph(rng, n)
		d, ok := g.Diameter()
		if !ok {
			return false
		}
		maxd := 0
		for u := 0; u < n; u++ {
			for _, dv := range g.Distances(u) {
				if dv > maxd {
					maxd = dv
				}
			}
		}
		return d == maxd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShortestPath(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnectedGraph(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(0, 199); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortestPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnectedGraph(rng, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.KShortestPaths(0, 59, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func unitWeight(u, v int) float64 { return 1 }

func TestShortestPathWeightedMatchesBFSUnderUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(rng, 30)
	for trial := 0; trial < 50; trial++ {
		src, dst := rng.Intn(30), rng.Intn(30)
		bfs, err := g.ShortestPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		dij, cost, err := g.ShortestPathWeighted(src, dst, unitWeight)
		if err != nil {
			t.Fatal(err)
		}
		if len(dij) != len(bfs) {
			t.Fatalf("%d->%d: dijkstra %d hops vs bfs %d", src, dst, len(dij)-1, len(bfs)-1)
		}
		if int(cost+0.5) != len(bfs)-1 {
			t.Fatalf("cost %g vs hops %d", cost, len(bfs)-1)
		}
	}
}

func TestShortestPathWeightedAvoidsHeavyArcs(t *testing.T) {
	// Square 0-1-2 vs direct 0-2: direct is one hop but heavy.
	g := New(3)
	mustBoth(t, g, 0, 1)
	mustBoth(t, g, 1, 2)
	mustBoth(t, g, 0, 2)
	w := func(u, v int) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10
		}
		return 1
	}
	p, cost, err := g.ShortestPathWeighted(0, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPath(p, []int{0, 1, 2}) || cost != 2 {
		t.Errorf("path %v cost %g, want detour at cost 2", p, cost)
	}
}

func TestShortestPathWeightedErrors(t *testing.T) {
	g := New(2)
	if _, _, err := g.ShortestPathWeighted(0, 1, unitWeight); err != ErrNoPath {
		t.Errorf("err = %v", err)
	}
	if _, _, err := g.ShortestPathWeighted(0, 9, unitWeight); err == nil {
		t.Error("bad vertex accepted")
	}
	// Self path.
	g2 := lineGraph(t, 2)
	p, cost, err := g2.ShortestPathWeighted(1, 1, unitWeight)
	if err != nil || len(p) != 1 || cost != 0 {
		t.Errorf("self path: %v %g %v", p, cost, err)
	}
}

func TestKShortestWeightedMatchesUnweightedUnderUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 12)
	pu, err := g.KShortestPaths(0, 11, 5)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := g.KShortestPathsWeighted(0, 11, 5, unitWeight)
	if err != nil {
		t.Fatal(err)
	}
	if len(pu) != len(pw) {
		t.Fatalf("counts differ: %d vs %d", len(pu), len(pw))
	}
	for i := range pu {
		if len(pu[i]) != len(pw[i]) {
			t.Errorf("path %d lengths differ: %v vs %v", i, pu[i], pw[i])
		}
	}
	if paths, err := g.KShortestPathsWeighted(0, 11, 0, unitWeight); err != nil || paths != nil {
		t.Error("k=0 wrong")
	}
}

func TestKShortestWeightedOrderedByCost(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomConnectedGraph(rng, 14)
	weights := make(map[[2]int]float64)
	w := func(u, v int) float64 {
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if x, ok := weights[key]; ok {
			return x
		}
		x := 1 + rng.Float64()*5
		weights[key] = x
		return x
	}
	// Materialize all weights first for determinism of w.
	for u := 0; u < g.Order(); u++ {
		for _, v := range g.Neighbors(u) {
			w(u, v)
		}
	}
	paths, err := g.KShortestPathsWeighted(0, 13, 6, w)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, p := range paths {
		c := 0.0
		for j := 0; j+1 < len(p); j++ {
			c += w(p[j], p[j+1])
		}
		if c < prev-1e-9 {
			t.Errorf("path %d cost %g < previous %g", i, c, prev)
		}
		prev = c
		seen := map[int]bool{}
		for _, v := range p {
			if seen[v] {
				t.Errorf("path %d revisits %d", i, v)
			}
			seen[v] = true
		}
	}
}
