package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// WeightFunc returns the nonnegative cost of the arc u -> v. It is only
// called for arcs present in the graph.
type WeightFunc func(u, v int) float64

// ShortestPathWeighted returns a minimum-cost path from src to dst under
// the weight function (Dijkstra), with deterministic tie-breaking by the
// vertex sequence. Costs must be nonnegative.
func (g *Graph) ShortestPathWeighted(src, dst int, w WeightFunc) ([]int, float64, error) {
	if err := g.check(src); err != nil {
		return nil, 0, err
	}
	if err := g.check(dst); err != nil {
		return nil, 0, err
	}
	path := g.dijkstraAvoiding(src, dst, w, nil, nil)
	if path == nil {
		return nil, 0, ErrNoPath
	}
	return path, pathCost(path, w), nil
}

func pathCost(path []int, w WeightFunc) float64 {
	c := 0.0
	for i := 0; i+1 < len(path); i++ {
		c += w(path[i], path[i+1])
	}
	return c
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
	seq  uint64 // insertion order for deterministic ties
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// dijkstraAvoiding runs Dijkstra from src to dst skipping blocked nodes
// and arcs. Returns nil when unreachable.
func (g *Graph) dijkstraAvoiding(src, dst int, w WeightFunc, blockedNodes map[int]bool, blockedEdges map[[2]int]bool) []int {
	if blockedNodes[src] || blockedNodes[dst] {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	n := len(g.adj)
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	var seq uint64
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			return buildPath(parent, src, dst)
		}
		for _, u := range g.adj[it.v] {
			if done[u] || blockedNodes[u] || blockedEdges[[2]int{it.v, u}] {
				continue
			}
			cost := w(it.v, u)
			if cost < 0 {
				panic(fmt.Sprintf("graph: negative weight on arc %d->%d", it.v, u))
			}
			if nd := dist[it.v] + cost; nd < dist[u] {
				dist[u] = nd
				parent[u] = it.v
				seq++
				heap.Push(q, pqItem{v: u, dist: nd, seq: seq})
			}
		}
	}
	return nil
}

// KShortestPathsWeighted is Yen's algorithm under a weight function:
// up to k loop-free minimum-cost paths, cheapest first, deterministic.
func (g *Graph) KShortestPathsWeighted(src, dst, k int, w WeightFunc) ([][]int, error) {
	if k <= 0 {
		return nil, nil
	}
	first, _, err := g.ShortestPathWeighted(src, dst, w)
	if err != nil {
		return nil, err
	}
	paths := [][]int{first}
	var candidates [][]int
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootPath := prev[:i+1]
			blockedEdges := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					blockedEdges[[2]int{p[i], p[i+1]}] = true
				}
			}
			blockedNodes := make(map[int]bool)
			for _, v := range rootPath[:i] {
				blockedNodes[v] = true
			}
			spurPath := g.dijkstraAvoiding(spur, dst, w, blockedNodes, blockedEdges)
			if spurPath == nil {
				continue
			}
			full := append(append([]int(nil), rootPath[:i]...), spurPath...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			ca, cb := pathCost(candidates[a], w), pathCost(candidates[b], w)
			if ca != cb {
				return ca < cb
			}
			return lessPath(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}
