package graph

import (
	"sort"
)

// KShortestPaths returns up to k loop-free minimum-hop paths from src to
// dst, shortest first, using Yen's algorithm on unit edge weights.
// Ties are broken lexicographically by the vertex sequence so the result
// is deterministic. It returns fewer than k paths when the graph does not
// contain that many simple paths.
func (g *Graph) KShortestPaths(src, dst, k int) ([][]int, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(src, dst)
	if err != nil {
		return nil, err
	}
	paths := [][]int{first}
	var candidates [][]int

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each spur node in the previous path, search for a deviation.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootPath := prev[:i+1]

			blockedEdges := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					blockedEdges[[2]int{p[i], p[i+1]}] = true
				}
			}
			blockedNodes := make(map[int]bool)
			for _, v := range rootPath[:i] {
				blockedNodes[v] = true
			}

			spurPath := g.shortestPathAvoiding(spur, dst, blockedNodes, blockedEdges)
			if spurPath == nil {
				continue
			}
			full := append(append([]int(nil), rootPath[:i]...), spurPath...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lessPath(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

// shortestPathAvoiding is BFS from src to dst that may not visit any vertex
// in blockedNodes and may not take any arc in blockedEdges. Returns nil if
// no such path exists.
func (g *Graph) shortestPathAvoiding(src, dst int, blockedNodes map[int]bool, blockedEdges map[[2]int]bool) []int {
	if blockedNodes[src] || blockedNodes[dst] {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := make([]int, len(g.adj))
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] != -1 || blockedNodes[v] || blockedEdges[[2]int{u, v}] {
				continue
			}
			parent[v] = u
			if v == dst {
				return buildPath(parent, src, dst)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(set [][]int, p []int) bool {
	for _, q := range set {
		if equalPath(q, p) {
			return true
		}
	}
	return false
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
