package graph

import (
	"sort"
)

// KSPSolver computes k-shortest simple paths over one graph repeatedly,
// reusing its BFS and blocking scratch across calls so that steady-state
// queries only allocate the returned paths. The route-selection engine
// keeps one solver per search and asks it for every pair's candidates.
//
// A solver is bound to the graph passed to NewKSPSolver and is not safe
// for concurrent use; the returned paths are freshly allocated and may
// be retained by the caller.
type KSPSolver struct {
	g *Graph
	// BFS scratch.
	parent []int
	queue  []int
	// Yen's blocking state: blockedNode marks root-path vertices,
	// blockedNext marks arcs out of the current spur vertex (every
	// blocked edge leaves the spur, so one bool per target suffices).
	blockedNode []bool
	blockedNext []bool
	btargets    []int // targets set in blockedNext, for O(set) reset
	candidates  [][]int
}

// NewKSPSolver returns a solver over g. The graph may keep growing; the
// scratch resizes on the next call.
func NewKSPSolver(g *Graph) *KSPSolver { return &KSPSolver{g: g} }

func (s *KSPSolver) ensure() {
	n := s.g.Order()
	if len(s.parent) != n {
		s.parent = make([]int, n)
		s.blockedNode = make([]bool, n)
		s.blockedNext = make([]bool, n)
		if cap(s.queue) < n {
			s.queue = make([]int, 0, n)
		}
	}
}

// Paths returns up to k loop-free minimum-hop paths from src to dst,
// shortest first, using Yen's algorithm on unit edge weights. Ties are
// broken lexicographically by the vertex sequence so the result is
// deterministic. It returns fewer than k paths when the graph does not
// contain that many simple paths.
func (s *KSPSolver) Paths(src, dst, k int) ([][]int, error) {
	if k <= 0 {
		return nil, nil
	}
	if err := s.g.check(src); err != nil {
		return nil, err
	}
	if err := s.g.check(dst); err != nil {
		return nil, err
	}
	s.ensure()
	first := s.bfs(src, dst, -1)
	if first == nil {
		return nil, ErrNoPath
	}
	paths := [][]int{first}
	candidates := s.candidates[:0]

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each spur node in the previous path, search for a deviation.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootPath := prev[:i+1]

			// Block the next hop of every known path sharing this root
			// (all such arcs leave the spur vertex) and the root-path
			// vertices before the spur.
			for _, p := range paths {
				if len(p) > i+1 && equalPrefix(p, rootPath) {
					if !s.blockedNext[p[i+1]] {
						s.blockedNext[p[i+1]] = true
						s.btargets = append(s.btargets, p[i+1])
					}
				}
			}
			for _, v := range rootPath[:i] {
				s.blockedNode[v] = true
			}

			spurPath := s.bfs(spur, dst, spur)

			for _, v := range s.btargets {
				s.blockedNext[v] = false
			}
			s.btargets = s.btargets[:0]
			for _, v := range rootPath[:i] {
				s.blockedNode[v] = false
			}

			if spurPath == nil {
				continue
			}
			full := append(append([]int(nil), rootPath[:i]...), spurPath...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lessPath(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	s.candidates = candidates[:0]
	return paths, nil
}

// bfs returns a freshly allocated shortest path from src to dst, skipping
// vertices with blockedNode set and — when spur >= 0 — arcs spur->v with
// blockedNext[v] set. Returns nil when no such path exists.
func (s *KSPSolver) bfs(src, dst, spur int) []int {
	if s.blockedNode[src] || s.blockedNode[dst] {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	parent := s.parent
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := s.queue[:0]
	queue = append(queue, src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range s.g.adj[u] {
			if parent[v] != -1 || s.blockedNode[v] {
				continue
			}
			if u == spur && s.blockedNext[v] {
				continue
			}
			parent[v] = u
			if v == dst {
				s.queue = queue[:0]
				return buildPath(parent, src, dst)
			}
			queue = append(queue, v)
		}
	}
	s.queue = queue[:0]
	return nil
}

// KShortestPaths returns up to k loop-free minimum-hop paths from src to
// dst, shortest first (see KSPSolver.Paths). Callers issuing many queries
// over the same graph should hold a KSPSolver instead to reuse its
// scratch buffers.
func (g *Graph) KShortestPaths(src, dst, k int) ([][]int, error) {
	return NewKSPSolver(g).Paths(src, dst, k)
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(set [][]int, p []int) bool {
	for _, q := range set {
		if equalPath(q, p) {
			return true
		}
	}
	return false
}

func equalPath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
