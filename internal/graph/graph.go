// Package graph provides the directed-graph machinery underlying the
// network model: shortest paths, k-shortest simple paths, all-pairs
// distances, diameter, cycle detection, and topological ordering.
//
// Vertices are dense integer IDs in [0, Order()). The graph is a simple
// adjacency-list digraph; an undirected network is represented by a pair
// of arcs. All algorithms are deterministic: neighbor lists keep
// insertion order and ties are broken by smallest vertex ID.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a directed graph over dense integer vertices.
// The zero value is an empty graph; use New or AddVertex/AddEdge to grow it.
type Graph struct {
	adj [][]int // adj[u] lists successors of u in insertion order
	m   int     // number of arcs
}

// New returns a directed graph with n vertices, numbered 0..n-1, and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int, n)}
}

// Order returns the number of vertices.
func (g *Graph) Order() int { return len(g.adj) }

// Size returns the number of arcs.
func (g *Graph) Size() int { return g.m }

// AddVertex appends a new vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds the arc u -> v. Duplicate arcs and self-loops are rejected.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graph: self-loop %d", u)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("graph: duplicate arc %d->%d", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.m++
	return nil
}

// RemoveEdge removes the arc u -> v, reporting whether it was present.
// The relative order of u's remaining successors is preserved, so
// deterministic traversals stay deterministic.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for i, w := range g.adj[u] {
		if w == v {
			g.adj[u] = append(g.adj[u][:i], g.adj[u][i+1:]...)
			g.m--
			return true
		}
	}
	return false
}

// AddBoth adds arcs u->v and v->u.
func (g *Graph) AddBoth(u, v int) error {
	if err := g.AddEdge(u, v); err != nil {
		return err
	}
	return g.AddEdge(v, u)
}

// HasEdge reports whether the arc u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the successors of u in insertion order.
// The returned slice must not be modified.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	return g.adj[u]
}

// OutDegree returns the number of arcs leaving u.
func (g *Graph) OutDegree(u int) int {
	if u < 0 || u >= len(g.adj) {
		return 0
	}
	return len(g.adj[u])
}

// InDegree returns the number of arcs entering v. O(V+E).
func (g *Graph) InDegree(v int) int {
	n := 0
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if w == v {
				n++
			}
		}
	}
	return n
}

// InDegrees returns the in-degree of every vertex in one pass.
func (g *Graph) InDegrees() []int {
	deg := make([]int, len(g.adj))
	for u := range g.adj {
		for _, w := range g.adj[u] {
			deg[w]++
		}
	}
	return deg
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), m: g.m}
	for u, ns := range g.adj {
		c.adj[u] = append([]int(nil), ns...)
	}
	return c
}

func (g *Graph) check(v int) error {
	if v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", v, len(g.adj))
	}
	return nil
}

// ErrNoPath is returned when no path exists between the requested vertices.
var ErrNoPath = errors.New("graph: no path")

// ShortestPath returns a minimum-hop path from src to dst (inclusive),
// computed by BFS with deterministic tie-breaking (first-discovered, which
// given ordered adjacency lists means smallest-ID parent).
func (g *Graph) ShortestPath(src, dst int) ([]int, error) {
	if err := g.check(src); err != nil {
		return nil, err
	}
	if err := g.check(dst); err != nil {
		return nil, err
	}
	if src == dst {
		return []int{src}, nil
	}
	parent := make([]int, len(g.adj))
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] != -1 {
				continue
			}
			parent[v] = u
			if v == dst {
				return buildPath(parent, src, dst), nil
			}
			queue = append(queue, v)
		}
	}
	return nil, ErrNoPath
}

func buildPath(parent []int, src, dst int) []int {
	var rev []int
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Distances returns the BFS hop distance from src to every vertex
// (-1 for unreachable vertices).
func (g *Graph) Distances(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the hop distance from src to dst, or -1 if unreachable.
func (g *Graph) Distance(src, dst int) int {
	if src == dst {
		if src < 0 || src >= len(g.adj) {
			return -1
		}
		return 0
	}
	return g.Distances(src)[dst]
}

// Diameter returns the maximum finite shortest-path distance over all
// ordered vertex pairs, and whether the graph is strongly connected.
// For an empty or single-vertex graph it returns (0, true).
func (g *Graph) Diameter() (int, bool) {
	d := 0
	connected := true
	for u := range g.adj {
		dist := g.Distances(u)
		for v, dv := range dist {
			if v == u {
				continue
			}
			if dv == -1 {
				connected = false
				continue
			}
			if dv > d {
				d = dv
			}
		}
	}
	return d, connected
}

// IsConnected reports whether every vertex is reachable from every other.
func (g *Graph) IsConnected() bool {
	_, ok := g.Diameter()
	return ok
}

// HasCycle reports whether the digraph contains a directed cycle.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.adj))
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range g.adj {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// HasCycleWithArcs reports whether the digraph would contain a directed
// cycle after adding the given arcs, without modifying the graph — the
// clone-free way to test a batch of tentative arcs (e.g. a candidate
// route's consecutive-server arcs) against a prebuilt dependency graph.
// Arc endpoints must be valid vertices; duplicates of existing arcs are
// harmless, and a self-loop arc always closes a cycle.
func (g *Graph) HasCycleWithArcs(extra [][2]int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.adj))
	var visit func(u int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range g.adj[u] {
			switch color[v] {
			case gray:
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		for _, e := range extra {
			if e[0] != u {
				continue
			}
			switch color[e[1]] {
			case gray:
				return true
			case white:
				if visit(e[1]) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for u := range g.adj {
		if color[u] == white && visit(u) {
			return true
		}
	}
	return false
}

// TopoSort returns a topological ordering of the vertices, or an error if
// the graph has a cycle.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := g.InDegrees()
	// Min-ID-first queue keeps the ordering deterministic.
	var ready []int
	for v, d := range indeg {
		if d == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, len(g.adj))
	for len(ready) > 0 {
		sort.Ints(ready)
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != len(g.adj) {
		return nil, errors.New("graph: cycle detected, no topological order")
	}
	return order, nil
}

// MaxOutDegree returns the largest out-degree in the graph (0 if empty).
func (g *Graph) MaxOutDegree() int {
	d := 0
	for _, ns := range g.adj {
		if len(ns) > d {
			d = len(ns)
		}
	}
	return d
}
