package graph

import (
	"math/rand"
	"testing"
)

// randomConnected builds a deterministic undirected connected graph:
// a random spanning tree plus extra random edges.
func randomConnected(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if err := g.AddBoth(u, v); err != nil {
			panic(err)
		}
	}
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddBoth(u, v); err != nil {
			panic(err)
		}
	}
	return g
}

// A reused solver must return exactly what a fresh one-shot query does:
// any stale blocking or BFS state left between calls would change the
// path set. Exercised across random graphs, pairs, and k values.
func TestKSPSolverReuseMatchesOneShot(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomConnected(14, 10, seed)
		s := NewKSPSolver(g)
		rng := rand.New(rand.NewSource(seed * 100))
		for trial := 0; trial < 30; trial++ {
			src, dst := rng.Intn(g.Order()), rng.Intn(g.Order())
			k := 1 + rng.Intn(6)
			got, gotErr := s.Paths(src, dst, k)
			want, wantErr := g.KShortestPaths(src, dst, k)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed=%d %d->%d k=%d: err %v vs %v", seed, src, dst, k, gotErr, wantErr)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d %d->%d k=%d: %d paths, want %d", seed, src, dst, k, len(got), len(want))
			}
			for i := range got {
				if !equalPath(got[i], want[i]) {
					t.Fatalf("seed=%d %d->%d k=%d path %d: %v, want %v", seed, src, dst, k, i, got[i], want[i])
				}
			}
		}
	}
}

// The whole point of the solver struct: repeated queries must allocate
// strictly less than fresh one-shot calls (which rebuild the scratch
// every time). The returned paths still allocate — only the scratch is
// amortized — so the assertion is relative, not zero.
func TestKSPSolverAllocs(t *testing.T) {
	g := randomConnected(20, 14, 3)
	s := NewKSPSolver(g)
	if _, err := s.Paths(0, g.Order()-1, 6); err != nil { // warm the scratch
		t.Fatal(err)
	}
	reused := testing.AllocsPerRun(50, func() {
		if _, err := s.Paths(0, g.Order()-1, 6); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(50, func() {
		if _, err := g.KShortestPaths(0, g.Order()-1, 6); err != nil {
			t.Fatal(err)
		}
	})
	if reused >= fresh {
		t.Fatalf("reused solver allocates %.1f/op, fresh %.1f/op — scratch not reused", reused, fresh)
	}
}

func TestKSPSolverBadInput(t *testing.T) {
	g := New(3)
	s := NewKSPSolver(g)
	if got, err := s.Paths(0, 1, 0); got != nil || err != nil {
		t.Fatalf("k=0: got %v, %v", got, err)
	}
	if _, err := s.Paths(-1, 1, 2); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := s.Paths(0, 5, 2); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, err := s.Paths(0, 1, 2); err != ErrNoPath {
		t.Fatalf("disconnected pair: err %v, want ErrNoPath", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !g.RemoveEdge(0, 2) {
		t.Fatal("existing arc not removed")
	}
	if g.HasEdge(0, 2) || g.Size() != 3 {
		t.Fatalf("arc still present or size %d != 3", g.Size())
	}
	// Successor order of the survivors is preserved.
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 3 {
		t.Fatalf("neighbors after removal: %v", ns)
	}
	if g.RemoveEdge(0, 2) || g.RemoveEdge(2, 0) || g.RemoveEdge(-1, 0) || g.RemoveEdge(9, 0) {
		t.Fatal("absent arc reported removed")
	}
	if g.Size() != 3 {
		t.Fatalf("size changed by no-op removals: %d", g.Size())
	}
	// Removing and re-adding keeps AddEdge happy (no duplicate ghost).
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestHasCycleWithArcs(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		extra [][2]int
		want  bool
	}{
		{nil, false},
		{[][2]int{{2, 3}}, false},
		{[][2]int{{2, 0}}, true},          // closes 0->1->2->0
		{[][2]int{{0, 1}}, false},         // duplicate of an existing arc
		{[][2]int{{3, 3}}, true},          // self-loop
		{[][2]int{{2, 3}, {3, 0}}, true},  // cycle through two extras
		{[][2]int{{3, 0}, {1, 3}}, true},  // extras out of DFS order still found
		{[][2]int{{2, 3}, {3, 1}}, true},  // closes at 1
		{[][2]int{{3, 2}, {0, 3}}, false}, // converging arcs, no cycle
		{[][2]int{{2, 3}, {2, 3}}, false}, // duplicate extras
	}
	for i, tc := range cases {
		if got := g.HasCycleWithArcs(tc.extra); got != tc.want {
			t.Fatalf("case %d extra=%v: got %v, want %v", i, tc.extra, got, tc.want)
		}
	}
	// The graph itself must be untouched.
	if g.Size() != 2 || g.HasCycle() {
		t.Fatal("HasCycleWithArcs modified the graph")
	}
}

// HasCycleWithArcs must agree with the clone-and-add implementation it
// replaces, across random graphs and random arc batches.
func TestHasCycleWithArcsMatchesClone(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(6)
		g := New(n)
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
		for trial := 0; trial < 40; trial++ {
			var extra [][2]int
			for a := rng.Intn(4); a >= 0; a-- {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				extra = append(extra, [2]int{u, v})
			}
			clone := g.Clone()
			for _, e := range extra {
				if !clone.HasEdge(e[0], e[1]) {
					if err := clone.AddEdge(e[0], e[1]); err != nil {
						panic(err)
					}
				}
			}
			if got, want := g.HasCycleWithArcs(extra), clone.HasCycle(); got != want {
				t.Fatalf("seed=%d extra=%v: got %v, want %v", seed, extra, got, want)
			}
		}
	}
}
