// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document on stdout, so CI can publish benchmark results
// as a machine-readable artifact (BENCH_routing.json) and humans can
// diff runs across commits.
//
//	go test -bench . -benchmem ./... | go run ./tools/benchjson
//
// With -compare it instead diffs two of its own documents and exits
// non-zero when any benchmark present in both regressed — ns/op worse
// than -max-regress (fractional, default 0.10), or any allocs/op
// increase at all:
//
//	go run ./tools/benchjson -compare old.json new.json -max-regress 0.10
//
// Only the standard library is used. Lines that are not benchmark
// results or recognized headers (goos/goarch/pkg/cpu) are ignored, so
// interleaved PASS/ok lines are harmless.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Bytes/allocs fields are pointers so
// runs without -benchmem serialize as absent rather than zero.
type Result struct {
	Name        string   `json:"name"`
	Pkg         string   `json:"pkg,omitempty"`
	Runs        int64    `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Notes      string   `json:"notes,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	notes := flag.String("notes", "", "free-form provenance note embedded in the output document")
	compare := flag.String("compare", "", "baseline document: compare it against the new document named by the positional argument instead of converting stdin")
	maxRegress := flag.Float64("max-regress", 0.10, "with -compare, the tolerated fractional ns/op increase before failing")
	flag.Parse()
	if *compare != "" {
		// Tolerate -max-regress after the positional new.json (the
		// stdlib flag parser stops at the first positional argument).
		args := flag.Args()
		for i := 0; i+1 < len(args); i++ {
			if args[i] == "-max-regress" || args[i] == "--max-regress" {
				v, err := strconv.ParseFloat(args[i+1], 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: -max-regress %q: %v\n", args[i+1], err)
					os.Exit(2)
				}
				*maxRegress = v
				args = append(args[:i], args[i+2:]...)
				break
			}
		}
		if len(args) != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare old.json needs exactly one positional argument, the new document")
			os.Exit(2)
		}
		failed, err := runCompare(os.Stdout, *compare, args[0], *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc.Notes = *notes
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// loadDoc reads one benchjson document from disk.
func loadDoc(path string) (*Document, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// benchKey identifies one benchmark across documents. Sub-benchmark
// paths already encode their parameters, so pkg+name is unique.
func benchKey(r Result) string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// runCompare diffs new against old: every benchmark present in both
// documents is held to maxRegress on ns/op and to no allocs/op
// increase at all (an alloc on a zero-alloc path is a regression no
// timing threshold should excuse). Benchmarks present on only one
// side are reported but never fail the run, so adding or retiring a
// benchmark doesn't break the gate. Returns failed=true when any
// matched benchmark regressed.
func runCompare(w *os.File, oldPath, newPath string, maxRegress float64) (failed bool, err error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	base := make(map[string]Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		base[benchKey(r)] = r
	}
	matched := 0
	for _, nr := range newDoc.Benchmarks {
		or, ok := base[benchKey(nr)]
		if !ok {
			fmt.Fprintf(w, "  new   %-56s %10.1f ns/op (no baseline)\n", nr.Name, nr.NsPerOp)
			continue
		}
		matched++
		delete(base, benchKey(nr))
		delta := 0.0
		if or.NsPerOp > 0 {
			delta = (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		verdict := "ok"
		if delta > maxRegress {
			verdict = "FAIL"
			failed = true
		}
		allocNote := ""
		if or.AllocsPerOp != nil && nr.AllocsPerOp != nil && *nr.AllocsPerOp > *or.AllocsPerOp {
			allocNote = fmt.Sprintf("  allocs %.0f -> %.0f", *or.AllocsPerOp, *nr.AllocsPerOp)
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "  %-4s  %-56s %10.1f -> %10.1f ns/op  %+6.1f%%%s\n",
			verdict, nr.Name, or.NsPerOp, nr.NsPerOp, delta*100, allocNote)
	}
	for _, or := range oldDoc.Benchmarks {
		if _, ok := base[benchKey(or)]; ok {
			fmt.Fprintf(w, "  gone  %-56s %10.1f ns/op (baseline only)\n", or.Name, or.NsPerOp)
		}
	}
	fmt.Fprintf(w, "benchjson: %d compared against %s (max ns/op regression %.0f%%, any allocs/op increase fails)\n",
		matched, oldPath, maxRegress*100)
	if failed {
		fmt.Fprintln(w, "benchjson: FAIL")
	}
	return failed, nil
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine decodes one result line of the form
//
//	BenchmarkName[/sub][-P]  N  X ns/op  [Y B/op  Z allocs/op]
//
// Unparseable lines are skipped rather than fatal: `go test` may print
// benchmark names on their own line when output wraps.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 { // at least: name, runs, value, "ns/op"
		return Result{}, false
	}
	name := f[0]
	// Strip the trailing -GOMAXPROCS suffix go test appends (absent when
	// GOMAXPROCS=1); sub-benchmark slashes are kept.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, seenNs
}
