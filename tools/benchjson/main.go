// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document on stdout, so CI can publish benchmark results
// as a machine-readable artifact (BENCH_routing.json) and humans can
// diff runs across commits.
//
//	go test -bench . -benchmem ./... | go run ./tools/benchjson
//
// Only the standard library is used. Lines that are not benchmark
// results or recognized headers (goos/goarch/pkg/cpu) are ignored, so
// interleaved PASS/ok lines are harmless.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Bytes/allocs fields are pointers so
// runs without -benchmem serialize as absent rather than zero.
type Result struct {
	Name        string   `json:"name"`
	Pkg         string   `json:"pkg,omitempty"`
	Runs        int64    `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Notes      string   `json:"notes,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	notes := flag.String("notes", "", "free-form provenance note embedded in the output document")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc.Notes = *notes
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseLine decodes one result line of the form
//
//	BenchmarkName[/sub][-P]  N  X ns/op  [Y B/op  Z allocs/op]
//
// Unparseable lines are skipped rather than fatal: `go test` may print
// benchmark names on their own line when output wraps.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 { // at least: name, runs, value, "ns/op"
		return Result{}, false
	}
	name := f[0]
	// Strip the trailing -GOMAXPROCS suffix go test appends (absent when
	// GOMAXPROCS=1); sub-benchmark slashes are kept.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, seenNs
}
