// Package ubac_test is the top-level benchmark harness: one benchmark per
// evaluation artifact of the paper (see DESIGN.md's experiment index and
// EXPERIMENTS.md for recorded results).
//
//	T1   BenchmarkTable1*            Table 1 (LB / SP / heuristic / UB)
//	F-A  BenchmarkSweepDeadline      bounds vs deadline
//	F-B  BenchmarkSweepDiameter      bounds vs network diameter
//	F-C  BenchmarkSweepFanIn         bounds vs router fan-in
//	F-D  BenchmarkSelectAcrossTopologies   heuristic vs SP elsewhere
//	F-E  BenchmarkSimValidation      analytic bound vs simulated worst case
//	F-F  BenchmarkMultiClass         Theorem 5 multi-class delays
//	F-G  BenchmarkAdmission*         run-time admission throughput
//
// Ablations (design choices called out in DESIGN.md §4):
//
//	BenchmarkDelayClosedFormVsNumeric   Theorem 3 closed form vs busy-period evaluator
//	BenchmarkHeuristicKnobs             lookahead vs cheap scoring, K, cycle heuristic
//	BenchmarkDelayModelN                uniform-N (paper) vs per-server fan-in
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package ubac_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/bounds"
	"ubac/internal/config"
	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/routing"
	"ubac/internal/signaling"
	"ubac/internal/sim"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// voiceParams is the Table 1 scenario.
func voiceParams(net *topology.Network) bounds.Params {
	v := traffic.Voice()
	return bounds.Params{
		N: net.MaxDegree(), L: net.Diameter(),
		Burst: v.Bucket.Burst, Rate: v.Bucket.Rate, Deadline: v.Deadline,
	}
}

func maxUtil(b *testing.B, net *topology.Network, sel routing.Selector) *config.MaxUtilResult {
	b.Helper()
	cfg := config.New(delay.NewModel(net))
	cfg.Selector = sel
	res, err := cfg.MaxUtilization(traffic.Voice(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Bounds regenerates the Theorem 4 columns of Table 1.
func BenchmarkTable1Bounds(b *testing.B) {
	net := topology.MCI()
	p := voiceParams(net)
	var lb, ub float64
	for i := 0; i < b.N; i++ {
		var err error
		lb, ub, err = bounds.Bounds(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lb, "alphaLB")
	b.ReportMetric(ub, "alphaUB")
	b.Logf("Table 1 bounds: lower=%.2f upper=%.2f (paper: 0.30 / 0.61)", lb, ub)
}

// BenchmarkTable1SP regenerates the SP column of Table 1.
func BenchmarkTable1SP(b *testing.B) {
	net := topology.MCI()
	var alpha float64
	for i := 0; i < b.N; i++ {
		alpha = maxUtil(b, net, routing.SP{}).Alpha
	}
	b.ReportMetric(alpha, "alphaSP")
	b.Logf("Table 1 SP: %.2f (paper: 0.33)", alpha)
}

// BenchmarkTable1Heuristic regenerates the "Our Heuristics" column of
// Table 1 using the heuristic portfolio.
func BenchmarkTable1Heuristic(b *testing.B) {
	net := topology.MCI()
	var alpha float64
	for i := 0; i < b.N; i++ {
		alpha = maxUtil(b, net, routing.Portfolio{}).Alpha
	}
	b.ReportMetric(alpha, "alphaHeur")
	b.Logf("Table 1 heuristic portfolio: %.2f (paper: 0.45)", alpha)
}

// BenchmarkSweepDeadline regenerates F-A: the Theorem 4 bounds as the
// end-to-end deadline grows (fixed MCI N=6, L=4).
func BenchmarkSweepDeadline(b *testing.B) {
	net := topology.MCI()
	deadlines := []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5}
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range deadlines {
			p := voiceParams(net)
			p.Deadline = d
			lb, ub, err := bounds.Bounds(p)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("D=%4.0fms lower=%.4f upper=%.4f", d*1e3, lb, ub))
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkSweepDiameter regenerates F-B: bounds vs network diameter.
func BenchmarkSweepDiameter(b *testing.B) {
	net := topology.MCI()
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for l := 2; l <= 10; l++ {
			p := voiceParams(net)
			p.L = l
			lb, ub, err := bounds.Bounds(p)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("L=%2d lower=%.4f upper=%.4f", l, lb, ub))
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkSweepFanIn regenerates F-C: bounds vs router fan-in N.
func BenchmarkSweepFanIn(b *testing.B) {
	net := topology.MCI()
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for n := 2; n <= 16; n += 2 {
			p := voiceParams(net)
			p.N = n
			lb, ub, err := bounds.Bounds(p)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, fmt.Sprintf("N=%2d lower=%.4f upper=%.4f", n, lb, ub))
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkSelectAcrossTopologies regenerates F-D: SP vs heuristic
// maximum utilization on synthetic topologies.
func BenchmarkSelectAcrossTopologies(b *testing.B) {
	type entry struct {
		name string
		net  *topology.Network
	}
	mk := func(n *topology.Network, err error) *topology.Network {
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	nets := []entry{
		{"nsfnet", topology.NSFNet(topology.DefaultCapacity)},
		{"ring8", mk(topology.Ring(8, topology.DefaultCapacity))},
		{"grid3x3", mk(topology.Grid(3, 3, topology.DefaultCapacity))},
		{"tree3x2", mk(topology.Tree(3, 2, topology.DefaultCapacity))},
		{"random16", mk(topology.Random(16, 8, topology.DefaultCapacity, 7))},
	}
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, e := range nets {
			sp := maxUtil(b, e.net, routing.SP{})
			heur := maxUtil(b, e.net, routing.Portfolio{})
			if heur.Alpha < sp.Alpha-1e-9 {
				b.Fatalf("%s: portfolio %.3f lost to SP %.3f", e.name, heur.Alpha, sp.Alpha)
			}
			rows = append(rows, fmt.Sprintf("%-9s L=%d N=%d  lower=%.3f sp=%.3f heuristics=%.3f upper=%.3f",
				e.name, e.net.Diameter(), e.net.MaxDegree(), sp.Lower, sp.Alpha, heur.Alpha, sp.Upper))
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkSimValidation regenerates F-E: the simulated worst-case
// end-to-end queueing delay against the analytic bound under a verified
// configuration with adversarial (synchronized greedy burst) arrivals.
func BenchmarkSimValidation(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	voice := traffic.Voice()
	set, rep, err := (routing.Heuristic{}).Select(m, routing.Request{Class: voice, Alpha: 0.40})
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Safe {
		b.Fatal("alpha=0.40 unsafe")
	}
	res, err := m.SolveTwoClass(delay.ClassInput{Class: voice, Alpha: 0.40, Routes: set})
	if err != nil || !res.Converged {
		b.Fatalf("solve: %v", err)
	}
	bound, _ := set.MaxRouteDelay(res.D)
	var observed float64
	for i := 0; i < b.N; i++ {
		sm, err := sim.New(net, sim.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < set.Len(); r++ {
			if _, err := sm.AddFlow(sim.FlowSpec{
				Class: 0, Route: set.Route(r).Servers,
				Size: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Burst: voice.Bucket.Burst,
				Pattern: sim.GreedyBurst, Deadline: voice.Deadline,
			}); err != nil {
				b.Fatal(err)
			}
		}
		out, err := sm.Run(1.0)
		if err != nil {
			b.Fatal(err)
		}
		observed = out.PerClass[0].MaxQueueing
		if observed > bound {
			b.Fatalf("VIOLATION: observed %g > bound %g", observed, bound)
		}
		if out.PerClass[0].Late != 0 {
			b.Fatalf("late packets under verified configuration")
		}
	}
	b.ReportMetric(bound*1e3, "bound_ms")
	b.ReportMetric(observed*1e3, "observed_ms")
	b.Logf("F-E: observed %.4f ms <= analytic bound %.3f ms (%.1f%%)",
		observed*1e3, bound*1e3, 100*observed/bound)
}

// BenchmarkMultiClass regenerates F-F: Theorem 5 multi-class worst-case
// delays for a voice+video mix.
func BenchmarkMultiClass(b *testing.B) {
	net := topology.MCI()
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
		Deadline: 0.4,
		Priority: 1,
	}
	cfg := config.New(delay.NewModel(net))
	var rows []string
	for i := 0; i < b.N; i++ {
		res, err := cfg.SelectMultiClass([]config.ClassSpec{
			{Class: traffic.Voice(), Alpha: 0.15},
			{Class: video, Alpha: 0.20},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verify.Safe {
			b.Fatal("multi-class configuration unsafe")
		}
		rows = rows[:0]
		for ci, in := range res.Inputs {
			worst := 0.0
			for _, rr := range res.Verify.Routes {
				if rr.Class == in.Class.Name && rr.Bound > worst {
					worst = rr.Bound
				}
			}
			rows = append(rows, fmt.Sprintf("%-6s alpha=%.2f worst e2e=%7.3fms deadline=%gms",
				in.Class.Name, in.Alpha, worst*1e3, in.Class.Deadline*1e3))
			_ = ci
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// admissionBench builds a deployed controller at alpha=0.40.
func admissionBench(b *testing.B, kind admission.LedgerKind) *admission.Controller {
	b.Helper()
	net := topology.MCI()
	m := delay.NewModel(net)
	set, rep, err := (routing.Heuristic{}).Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.40})
	if err != nil || !rep.Safe {
		b.Fatalf("select: %v safe=%v", err, rep != nil && rep.Safe)
	}
	ctrl, err := admission.NewController(net,
		[]admission.ClassConfig{{Class: traffic.Voice(), Alpha: 0.40, Routes: set}}, kind)
	if err != nil {
		b.Fatal(err)
	}
	return ctrl
}

// BenchmarkAdmissionLocked regenerates F-G with the mutex ledger.
func BenchmarkAdmissionLocked(b *testing.B) {
	ctrl := admissionBench(b, admission.LockedLedger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id, err := ctrl.Admit("voice", i%19, (i+7)%19); err == nil {
			if err := ctrl.Teardown(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdmissionAtomic regenerates F-G with the lock-free ledger.
func BenchmarkAdmissionAtomic(b *testing.B) {
	ctrl := admissionBench(b, admission.AtomicLedger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id, err := ctrl.Admit("voice", i%19, (i+7)%19); err == nil {
			if err := ctrl.Teardown(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdmitWithTelemetry is BenchmarkAdmissionAtomic with a live
// metrics registry and audit ring attached: the difference between the
// two quantifies the full observability cost on the admission hot path
// (the default Nop sink must stay within 5% of the seed; this one pays
// for two time.Now() calls, histogram atomics, and a ring append).
func BenchmarkAdmitWithTelemetry(b *testing.B) {
	ctrl := admissionBench(b, admission.AtomicLedger)
	sink := telemetry.NewRegistrySink(telemetry.NewRegistry(), telemetry.NewRing(4096))
	ctrl.SetSink(sink)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id, err := ctrl.Admit("voice", i%19, (i+7)%19); err == nil {
			if err := ctrl.Teardown(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	if sink.Admit.Value() == 0 {
		b.Fatal("telemetry sink saw no admissions")
	}
}

// BenchmarkAdmissionParallel regenerates F-G's concurrency story: all
// cores admitting and tearing down at once (lock-free ledger).
func BenchmarkAdmissionParallel(b *testing.B) {
	ctrl := admissionBench(b, admission.AtomicLedger)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if id, err := ctrl.Admit("voice", i%19, (i+7)%19); err == nil {
				if err := ctrl.Teardown(id); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAdmissionDistributed regenerates F-G's distributed variant:
// the same utilization test performed through hop-by-hop signaling
// between per-router agent goroutines (internal/signaling), exposing the
// coordination cost relative to the centralized ledgers above.
func BenchmarkAdmissionDistributed(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	set, rep, err := (routing.Heuristic{}).Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.40})
	if err != nil || !rep.Safe {
		b.Fatalf("select: %v", err)
	}
	n, err := signaling.Start(net, []signaling.ClassConfig{
		{Class: traffic.Voice(), Alpha: 0.40, Routes: set},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if id, err := n.Establish("voice", i%19, (i+7)%19); err == nil {
			if err := n.Terminate(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDelayClosedFormVsNumeric is the DESIGN.md §4 ablation: the
// Theorem 3 closed form against the general busy-period evaluator.
func BenchmarkDelayClosedFormVsNumeric(b *testing.B) {
	b.Run("closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			delay.ServerBound(0.45, 640, 32e3, 6, 0.02)
		}
	})
	b.Run("numeric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := delay.ServerBoundNumeric(0.45, 640, 32e3, 6, 100e6, 0.02); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeuristicKnobs is the DESIGN.md §4 ablation over the
// selection heuristic's knobs at the Table 1 operating point.
func BenchmarkHeuristicKnobs(b *testing.B) {
	net := topology.MCI()
	variants := []struct {
		name string
		h    routing.Heuristic
	}{
		{"lookahead", routing.Heuristic{}},
		{"delayweighted", routing.Heuristic{DelayWeighted: true}},
		{"parallel", routing.Heuristic{Parallel: true}},
		{"cheap", routing.Heuristic{Mode: routing.Cheap}},
		{"k4", routing.Heuristic{K: 4, LengthSlack: 1}},
		{"nocycles", routing.Heuristic{IgnoreCycles: true}},
		{"noorder", routing.Heuristic{IgnoreOrder: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			m := delay.NewModel(net)
			var safe bool
			for i := 0; i < b.N; i++ {
				_, rep, err := v.h.Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.40})
				if err != nil {
					b.Fatal(err)
				}
				safe = rep.Safe
			}
			if safe {
				b.ReportMetric(1, "safe@0.40")
			} else {
				b.ReportMetric(0, "safe@0.40")
			}
		})
	}
}

// BenchmarkDelayModelN is the DESIGN.md §4 ablation of uniform-N (the
// paper's model) against the per-server fan-in generalization.
func BenchmarkDelayModelN(b *testing.B) {
	net := topology.MCI()
	set, rep, err := (routing.SP{}).Select(delay.NewModel(net), routing.Request{Class: traffic.Voice(), Alpha: 0.30})
	if err != nil || !rep.Safe {
		b.Fatalf("select: %v", err)
	}
	in := delay.ClassInput{Class: traffic.Voice(), Alpha: 0.30, Routes: set}
	for _, mode := range []struct {
		name string
		m    delay.NMode
	}{{"uniformN", delay.UniformN}, {"perServer", delay.PerServerFanIn}} {
		b.Run(mode.name, func(b *testing.B) {
			m := delay.NewModel(net)
			m.NMode = mode.m
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := m.SolveTwoClass(in)
				if err != nil || !res.Converged {
					b.Fatalf("solve: %v", err)
				}
				worst, _ = set.MaxRouteDelay(res.D)
			}
			b.ReportMetric(worst*1e3, "worstE2E_ms")
		})
	}
}

// BenchmarkMeasuredDeadlineSweep regenerates F-H: the *achieved* maximum
// utilization (not just the Theorem 4 bounds) as the deadline varies, for
// SP and the heuristic portfolio on the MCI backbone.
func BenchmarkMeasuredDeadlineSweep(b *testing.B) {
	net := topology.MCI()
	deadlines := []float64{0.05, 0.1, 0.2}
	var rows []string
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, d := range deadlines {
			cls := traffic.Voice()
			cls.Deadline = d
			row := fmt.Sprintf("D=%3.0fms", d*1e3)
			for _, sel := range []routing.Selector{routing.SP{}, routing.Portfolio{}} {
				cfg := config.New(delay.NewModel(net))
				cfg.Selector = sel
				cfg.Granularity = 0.005
				res, err := cfg.MaxUtilization(cls, nil)
				if err != nil {
					b.Fatal(err)
				}
				row += fmt.Sprintf("  %s=%.3f", sel.Name(), res.Alpha)
			}
			rows = append(rows, row)
		}
	}
	for _, r := range rows {
		b.Log(r)
	}
}

// BenchmarkConfigScaling measures how the configuration step scales with
// network size: full portfolio selection at alpha=0.3 over growing
// Waxman topologies (the whole point of the paper is that only this
// offline step is expensive — run time admission stays O(path)).
func BenchmarkConfigScaling(b *testing.B) {
	for _, n := range []int{10, 20, 30} {
		net, err := topology.Waxman(n, 0.25, 0.4, topology.DefaultCapacity, 17)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			m := delay.NewModel(net)
			for i := 0; i < b.N; i++ {
				_, rep, err := (routing.Heuristic{Parallel: true}).Select(m,
					routing.Request{Class: traffic.Voice(), Alpha: 0.2})
				if err != nil {
					b.Fatal(err)
				}
				_ = rep
			}
			b.ReportMetric(float64(net.NumServers()), "servers")
			b.ReportMetric(float64(len(net.Pairs())), "pairs")
		})
	}
}

// BenchmarkFixedPointParallel measures the parallel fixed-point sweep
// against the sequential solver on an 8-router topology carrying a
// flow-level route set (every shortest-path pair replicated per admitted
// flow, which leaves the fixed point unchanged — Y is a max — but scales
// the per-sweep Y-accumulation work the way a populated deployment
// does). Every parallel result is checked bit-identical to the
// sequential one; the workers=4 variant is the ISSUE acceptance point
// (>= 2x over sequential at GOMAXPROCS >= 4).
func BenchmarkFixedPointParallel(b *testing.B) {
	net, err := topology.Ring(8, topology.DefaultCapacity)
	if err != nil {
		b.Fatal(err)
	}
	voice := traffic.Voice()
	const alpha = 0.50
	base, _, err := (routing.SP{}).Select(delay.NewModel(net), routing.Request{Class: voice, Alpha: alpha})
	if err != nil {
		b.Fatal(err)
	}
	const flowsPerPair = 512
	set := routes.NewSet(net)
	for c := 0; c < flowsPerPair; c++ {
		for r := 0; r < base.Len(); r++ {
			if err := set.Add(base.Route(r)); err != nil {
				b.Fatal(err)
			}
		}
	}
	in := delay.ClassInput{Class: voice, Alpha: alpha, Routes: set}
	seq := delay.NewModel(net)
	ref, err := seq.SolveTwoClass(in)
	if err != nil || !ref.Converged {
		b.Fatalf("sequential solve: %v converged=%v", err, ref != nil && ref.Converged)
	}
	b.Logf("%d routes (%d pairs x %d flows), %d iterations to fixed point",
		set.Len(), base.Len(), flowsPerPair, ref.Iterations)
	for _, workers := range []int{0, 2, 4, runtime.GOMAXPROCS(0)} {
		name := "sequential"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		} else if workers != 0 {
			continue
		}
		b.Run(name, func(b *testing.B) {
			m := delay.NewModel(net)
			m.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := m.SolveTwoClass(in)
				if err != nil || !res.Converged {
					b.Fatalf("solve: %v", err)
				}
				if res.Iterations != ref.Iterations {
					b.Fatalf("iteration count drifted: %d vs %d", res.Iterations, ref.Iterations)
				}
				for s := range res.D {
					if math.Float64bits(res.D[s]) != math.Float64bits(ref.D[s]) {
						b.Fatalf("delay vector not bit-identical to sequential at server %d", s)
					}
				}
			}
		})
	}
}

// BenchmarkAggregationPenalty regenerates X-3: at the configured
// operating point (alpha=0.40, routes from the heuristic, every path
// filled to its admission-control capacity), compare the
// configuration-time delay bound against the flow-aware analysis the
// paper's approach replaces. The gap is the utilization price of
// flow-state-free admission.
func BenchmarkAggregationPenalty(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	voice := traffic.Voice()
	const alpha = 0.40
	set, rep, err := (routing.Heuristic{}).Select(m, routing.Request{Class: voice, Alpha: alpha})
	if err != nil || !rep.Safe {
		b.Fatalf("select: %v", err)
	}
	ctrl, err := admission.NewController(net,
		[]admission.ClassConfig{{Class: voice, Alpha: alpha, Routes: set}},
		admission.AtomicLedger)
	if err != nil {
		b.Fatal(err)
	}
	// Fill every pair round-robin until the controller rejects everywhere.
	var flows []delay.Flow
	pairs := net.Pairs()
	active := make([]bool, len(pairs))
	for i := range active {
		active[i] = true
	}
	remaining := len(pairs)
	for remaining > 0 {
		for i, p := range pairs {
			if !active[i] {
				continue
			}
			if _, err := ctrl.Admit("voice", p[0], p[1]); err != nil {
				active[i] = false
				remaining--
				continue
			}
			for r := 0; r < set.Len(); r++ {
				rt := set.Route(r)
				if rt.Src == p[0] && rt.Dst == p[1] {
					flows = append(flows, delay.Flow{Bucket: voice.Bucket, Route: rt})
					break
				}
			}
		}
	}
	cfgRes, err := m.SolveTwoClass(delay.ClassInput{Class: voice, Alpha: alpha, Routes: set})
	if err != nil || !cfgRes.Converged {
		b.Fatalf("config solve: %v", err)
	}
	worstCfg, _ := set.MaxRouteDelay(cfgRes.D)

	var fa *delay.FlowAwareResult
	for i := 0; i < b.N; i++ {
		fa, err = m.SolveFlowAware(flows)
		if err != nil || !fa.Converged {
			b.Fatalf("flow-aware solve: %v", err)
		}
	}
	if fa.MaxFlowDelay() > worstCfg+1e-9 {
		b.Fatalf("flow-aware %g exceeds configuration bound %g", fa.MaxFlowDelay(), worstCfg)
	}
	b.ReportMetric(float64(len(flows)), "flows")
	b.ReportMetric(worstCfg*1e3, "config_ms")
	b.ReportMetric(fa.MaxFlowDelay()*1e3, "flowaware_ms")
	b.Logf("X-3: %d admitted flows; config bound %.2f ms vs flow-aware %.2f ms (%.2fx aggregation penalty)",
		len(flows), worstCfg*1e3, fa.MaxFlowDelay()*1e3, worstCfg/fa.MaxFlowDelay())
}
