package main

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ubac/internal/admission"
	"ubac/internal/config"
	"ubac/internal/core"
	"ubac/internal/policy"
	"ubac/internal/topology"
	"ubac/internal/traffic"
	"ubac/internal/workload"
)

// scenarioConfig parameterizes -mode scenario: an open-loop,
// virtual-time replay of a generated multi-tenant workload against an
// in-process controller with an admission policy installed. Unlike the
// closed-loop modes it measures *per-tier* overload behavior — which
// tenants absorb the rejections when bursty traffic exceeds the
// verified capacity — deterministically from a seed, with no wall
// clock in the loop.
type scenarioConfig struct {
	topo       string
	alpha      float64
	class      string
	policySpec string
	arrivals   string  // poisson:rate=R | mmpp:high=H,low=L,on=S,off=S
	mix        string  // tenant=weight[,tenant=weight...] ("" = untenanted)
	holding    float64 // mean call holding time, virtual seconds
	horizon    float64 // generated window, virtual seconds
	seed       int64
}

// tierOutcome is one tier's replay result, split by rejection cause.
type tierOutcome struct {
	workload.BlockingStats
	RejectPolicy   int // shed / rate-limited / reserve by the policy
	RejectCapacity int // refused by the utilization test
}

// scenarioReport is the outcome of one scenario replay.
type scenarioReport struct {
	Overall  workload.BlockingStats
	Tiers    map[string]*tierOutcome
	Describe string  // policy banner
	Offered  float64 // offered load, Erlangs
	IDC      float64 // analytic burstiness of the arrival process (1 = Poisson)
	CV       float64 // empirical interarrival CV of the generated window
	PeakUtil float64 // MaxUtilization high-water mark over the replay
}

// callSource abstracts the two arrival generators.
type callSource interface {
	Generate(horizon float64) []workload.Call
	OfferedLoad() float64
}

// parseArrivalSpec resolves the -arrivals flag:
//
//	poisson:rate=R
//	mmpp:high=H,low=L,on=S,off=S   (rates in calls/s, sojourns in seconds)
//
// returning the generator and the analytic IDC of the process.
func parseArrivalSpec(spec string, holding float64, pairs [][2]int, seed int64) (callSource, float64, error) {
	kind, rest, hasArgs := strings.Cut(spec, ":")
	kv := map[string]float64{}
	if hasArgs {
		for _, arg := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(arg, "=")
			if !ok {
				return nil, 0, fmt.Errorf("malformed -arrivals argument %q (want key=value)", arg)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("-arrivals %s=%q is not a number", key, val)
			}
			kv[key] = v
		}
	}
	need := func(keys ...string) error {
		for _, k := range keys {
			if _, ok := kv[k]; !ok {
				return fmt.Errorf("-arrivals %s needs %s=", kind, k)
			}
		}
		if len(kv) != len(keys) {
			return fmt.Errorf("-arrivals %s takes exactly %v", kind, keys)
		}
		return nil
	}
	switch kind {
	case "poisson":
		if err := need("rate"); err != nil {
			return nil, 0, err
		}
		g, err := workload.NewGenerator(kv["rate"], holding, pairs, seed)
		return g, 1, err
	case "mmpp":
		if err := need("high", "low", "on", "off"); err != nil {
			return nil, 0, err
		}
		cfg := workload.MMPPConfig{
			HighRate: kv["high"], LowRate: kv["low"],
			MeanHigh: kv["on"], MeanLow: kv["off"],
		}
		g, err := workload.NewMMPPGenerator(cfg, holding, pairs, seed)
		if err != nil {
			return nil, 0, err
		}
		return g, cfg.IDC(), nil
	default:
		return nil, 0, fmt.Errorf("unknown -arrivals kind %q (poisson | mmpp)", kind)
	}
}

// parseMixSpec resolves -mix "gold=1,silver=2,bronze=7" into a
// weighted tenant mix over the scenario's traffic class. Empty spec =
// one untenanted slice.
func parseMixSpec(spec, class string) ([]workload.MixEntry, error) {
	if spec == "" {
		return []workload.MixEntry{{Class: class, Weight: 1}}, nil
	}
	var mix []workload.MixEntry
	for _, arg := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(arg, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed -mix entry %q (want tenant=weight)", arg)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("-mix %s=%q is not a number", name, val)
		}
		mix = append(mix, workload.MixEntry{Class: class, Tenant: name, Weight: w})
	}
	return mix, nil
}

// scenarioAdmitter adapts the controller to workload.ReplayTiered,
// carrying the virtual clock (read by the token-bucket policy) and
// per-tier rejection-cause counts. The replay is single-threaded, so
// the maps need no lock.
type scenarioAdmitter struct {
	ctrl     *admission.Controller
	vnow     atomic.Int64 // virtual unix-nanos, advanced by the schedule
	outcomes map[string]*tierOutcome
	peakUtil float64
}

func (a *scenarioAdmitter) Advance(now float64) {
	// +1 keeps the clock nonzero at t=0 (zero means "unanchored" to the
	// token bucket's refill bookkeeping).
	a.vnow.Store(int64(now*1e9) + 1)
}

func (a *scenarioAdmitter) outcome(class, tenant string) *tierOutcome {
	key := tenant
	if key == "" {
		key = class
	}
	o := a.outcomes[key]
	if o == nil {
		o = &tierOutcome{}
		a.outcomes[key] = o
	}
	return o
}

func (a *scenarioAdmitter) TryAdmitTier(class, tenant string, src, dst int) (uint64, bool) {
	if u := a.ctrl.MaxUtilization(); u > a.peakUtil {
		a.peakUtil = u
	}
	id, err := a.ctrl.AdmitWithTenant(class, tenant, src, dst)
	o := a.outcome(class, tenant)
	if err != nil {
		switch {
		case errors.Is(err, admission.ErrPolicyRate),
			errors.Is(err, admission.ErrPolicyShed),
			errors.Is(err, admission.ErrPolicyReserve):
			o.RejectPolicy++
		default:
			o.RejectCapacity++
		}
		return 0, false
	}
	return uint64(id), true
}

func (a *scenarioAdmitter) Release(h uint64) { _ = a.ctrl.Teardown(admission.FlowID(h)) }

// runScenario configures a controller, installs the policy, generates
// the workload and replays it in virtual time.
func runScenario(cfg scenarioConfig) (*scenarioReport, error) {
	if cfg.horizon <= 0 || cfg.holding <= 0 {
		return nil, fmt.Errorf("-horizon and -holding must be positive")
	}
	net, err := topology.Parse(cfg.topo)
	if err != nil {
		return nil, err
	}
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		return nil, err
	}
	dep, err := sys.Configure(map[string]float64{"voice": cfg.alpha})
	if err != nil {
		return nil, err
	}
	if !dep.Safe() {
		return nil, fmt.Errorf("alpha=%.3f does not verify on %s", cfg.alpha, net.Name())
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		return nil, err
	}

	pc, err := config.ParsePolicySpec(cfg.policySpec)
	if err != nil {
		return nil, err
	}
	if pc.Kind == "slo_gated" {
		// Virtual-time replay: wall-clock probe spacing is meaningless, so
		// sample the load signal on every decision (deterministic too).
		pc.SampleIntervalMS = -1
	}
	pol, err := pc.Build(ctrl.MaxUtilization)
	if err != nil {
		return nil, err
	}

	adm := &scenarioAdmitter{ctrl: ctrl, outcomes: map[string]*tierOutcome{}}
	if tb, ok := pol.(*policy.TokenBucket); ok {
		tb.Clock = adm.vnow.Load
	}
	ctrl.SetPolicy(pol)

	routed, err := routedPairs(net, ctrl, cfg.class)
	if err != nil {
		return nil, err
	}
	if len(routed) == 0 {
		return nil, fmt.Errorf("no admittable pairs for class %q", cfg.class)
	}
	pairs := make([][2]int, len(routed))
	for i, p := range routed {
		pairs[i] = [2]int{p.src, p.dst}
	}

	src, idc, err := parseArrivalSpec(cfg.arrivals, cfg.holding, pairs, cfg.seed)
	if err != nil {
		return nil, err
	}
	mix, err := parseMixSpec(cfg.mix, cfg.class)
	if err != nil {
		return nil, err
	}
	calls := src.Generate(cfg.horizon)
	if len(calls) == 0 {
		return nil, fmt.Errorf("no calls generated over %.0fs", cfg.horizon)
	}
	// The mix seed is offset so the tenant draw never reuses the
	// arrival stream.
	if err := workload.ApplyMix(calls, mix, cfg.seed+1); err != nil {
		return nil, err
	}

	overall, perTier := workload.ReplayTiered(workload.Schedule(calls), calls, adm)
	rep := &scenarioReport{
		Overall:  overall,
		Tiers:    adm.outcomes,
		Describe: pc.Describe(),
		Offered:  src.OfferedLoad(),
		IDC:      idc,
		CV:       workload.InterarrivalCV(calls),
		PeakUtil: adm.peakUtil,
	}
	// Cross-check the adapter's cause counts against the replay's
	// blocking stats (they observe the same decisions).
	for key, ts := range perTier {
		o := rep.Tiers[key]
		if o == nil {
			o = &tierOutcome{}
			rep.Tiers[key] = o
		}
		o.BlockingStats = *ts
	}
	return rep, nil
}

// printScenarioReport renders the per-tier reject-ratio table.
func printScenarioReport(w io.Writer, cfg scenarioConfig, rep *scenarioReport) {
	fmt.Fprintf(w, "ubacload scenario: topology=%s alpha=%.3f policy=[%s]\n", cfg.topo, cfg.alpha, rep.Describe)
	fmt.Fprintf(w, "  arrivals=%s horizon=%.0fs holding=%.1fs seed=%d: %d calls, %.1f Erlangs offered, IDC=%.1f, interarrival CV=%.2f\n",
		cfg.arrivals, cfg.horizon, cfg.holding, cfg.seed, rep.Overall.Offered, rep.Offered, rep.IDC, rep.CV)
	fmt.Fprintf(w, "  overall: admitted %d  rejected %d (ratio %.4f)  peak_util %.3f\n",
		rep.Overall.Admitted, rep.Overall.Blocked, rep.Overall.Blocking(), rep.PeakUtil)
	keys := make([]string, 0, len(rep.Tiers))
	for k := range rep.Tiers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s %8s %8s\n",
		"tier", "offered", "admitted", "rejected", "ratio", "policy", "capacity")
	for _, k := range keys {
		o := rep.Tiers[k]
		fmt.Fprintf(w, "  %-12s %8d %8d %8d %8.4f %8d %8d\n",
			k, o.Offered, o.Admitted, o.Blocked, o.Blocking(), o.RejectPolicy, o.RejectCapacity)
	}
}
