package main

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ubac/internal/wire"
)

// wireDriver drives a live ubacd over the binary wire transport
// (-transport wire): every admit call is one framed request on one of
// the client's pipelined connections, so -conc workers sharing a
// connection form exactly the pipeline the server coalesces into
// AdmitBatch calls.
type wireDriver struct {
	c     *wire.Client
	class uint32
	pool  sync.Pool // *wireScratch
}

type wireScratch struct {
	reqs     []wire.AdmitReq
	res      []wire.AdmitResult
	statuses []uint32
}

// newWireDriver dials the daemon's wire listener, resolves the class
// to its wire index, and discovers the admittable pairs over the
// protocol itself (no topology flag needed, like http mode).
func newWireDriver(target, class string, conns, pipeline int) (*wireDriver, []pairSpec, error) {
	addr := strings.TrimPrefix(strings.TrimPrefix(target, "http://"), "tcp://")
	c, err := wire.Dial(wire.ClientOptions{Addr: addr, Conns: conns, Pipeline: pipeline})
	if err != nil {
		return nil, nil, fmt.Errorf("wire dial %s: %w", addr, err)
	}
	idx, ok := c.ClassIndex(class)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: daemon has no class %q (classes: %s)", class, strings.Join(c.Classes(), ", "))
	}
	routes, err := c.Routes(idx)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	pairs := make([]pairSpec, 0, len(routes))
	for _, r := range routes {
		pairs = append(pairs, pairSpec{src: int(r.Src), dst: int(r.Dst)})
	}
	d := &wireDriver{c: c, class: idx}
	d.pool.New = func() any { return &wireScratch{} }
	return d, pairs, nil
}

func (d *wireDriver) close() error { return d.c.Close() }

func (d *wireDriver) admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error) {
	sc := d.pool.Get().(*wireScratch)
	defer d.pool.Put(sc)
	sc.reqs = sc.reqs[:0]
	for _, p := range pairs {
		sc.reqs = append(sc.reqs, wire.AdmitReq{Class: d.class, Src: uint32(p.src), Dst: uint32(p.dst)})
	}
	res, err := d.c.Admit(sc.reqs, sc.res[:0])
	sc.res = res
	if err != nil {
		return ids, 0, err
	}
	rejected := 0
	for _, r := range res {
		switch {
		case r.Status == wire.StatusOK:
			ids = append(ids, r.ID)
		case wire.StatusRejected(r.Status):
			rejected++
		default:
			return ids, rejected, fmt.Errorf("wire admit: %w", r.Err())
		}
	}
	return ids, rejected, nil
}

func (d *wireDriver) teardown(ids []uint64) error {
	sc := d.pool.Get().(*wireScratch)
	defer d.pool.Put(sc)
	statuses, err := d.c.Teardown(ids, sc.statuses[:0])
	sc.statuses = statuses
	if err != nil {
		return err
	}
	for i, st := range statuses {
		if st != wire.StatusOK {
			return fmt.Errorf("wire teardown of %d: %w", ids[i], wire.StatusErr(st))
		}
	}
	return nil
}

// multiDriver drives several cluster nodes at once (-targets): admits
// round-robin across one wire driver per node; teardowns go back to
// the node that admitted the flow, which cluster flow IDs carry in
// their high byte (the edge that admitted a flow holds its lease slot,
// so only that edge can release it).
type multiDriver struct {
	addrs   []string
	drivers []*wireDriver
	next    atomic.Uint64
	admits  []atomic.Uint64 // per-target admitted-flow counts
	// owner maps a flow-ID node byte to the driver index that saw it
	// admitted; -1 until a node's first admit comes back.
	owner [256]atomic.Int32
}

func newMultiDriver(targets []string, class string, conns, pipeline int) (*multiDriver, []pairSpec, error) {
	m := &multiDriver{admits: make([]atomic.Uint64, len(targets))}
	for i := range m.owner {
		m.owner[i].Store(-1)
	}
	var pairs []pairSpec
	for _, target := range targets {
		d, p, err := newWireDriver(target, class, conns, pipeline)
		if err != nil {
			m.close()
			return nil, nil, fmt.Errorf("target %s: %w", target, err)
		}
		m.drivers = append(m.drivers, d)
		m.addrs = append(m.addrs, strings.TrimPrefix(strings.TrimPrefix(target, "http://"), "tcp://"))
		if pairs == nil {
			// Every cluster member runs the identical admission
			// configuration, so one node's route discovery covers all.
			pairs = p
		}
	}
	return m, pairs, nil
}

func (m *multiDriver) close() error {
	var err error
	for _, d := range m.drivers {
		if cerr := d.close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (m *multiDriver) admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error) {
	i := int(m.next.Add(1) % uint64(len(m.drivers)))
	before := len(ids)
	ids, rejected, err := m.drivers[i].admit(pairs, ids)
	for _, id := range ids[before:] {
		m.owner[id>>56].Store(int32(i))
	}
	m.admits[i].Add(uint64(len(ids) - before))
	return ids, rejected, err
}

func (m *multiDriver) teardown(ids []uint64) error {
	// Partition by admitting node. The closed loop usually hands back a
	// run of IDs from one node, so group with a small map.
	groups := make(map[int32][]uint64, len(m.drivers))
	for _, id := range ids {
		idx := m.owner[id>>56].Load()
		if idx < 0 {
			return fmt.Errorf("wire teardown of %d: flow from unknown node %d", id, id>>56)
		}
		groups[idx] = append(groups[idx], id)
	}
	for idx, g := range groups {
		if err := m.drivers[idx].teardown(g); err != nil {
			return err
		}
	}
	return nil
}

// perNode reports each target's admitted-flow count for the run
// summary.
func (m *multiDriver) perNode() []struct {
	Addr     string
	Admitted uint64
} {
	out := make([]struct {
		Addr     string
		Admitted uint64
	}, len(m.drivers))
	for i := range m.drivers {
		out[i].Addr = m.addrs[i]
		out[i].Admitted = m.admits[i].Load()
	}
	return out
}
