package main

import (
	"fmt"
	"strings"
	"sync"

	"ubac/internal/wire"
)

// wireDriver drives a live ubacd over the binary wire transport
// (-transport wire): every admit call is one framed request on one of
// the client's pipelined connections, so -conc workers sharing a
// connection form exactly the pipeline the server coalesces into
// AdmitBatch calls.
type wireDriver struct {
	c     *wire.Client
	class uint32
	pool  sync.Pool // *wireScratch
}

type wireScratch struct {
	reqs     []wire.AdmitReq
	res      []wire.AdmitResult
	statuses []uint32
}

// newWireDriver dials the daemon's wire listener, resolves the class
// to its wire index, and discovers the admittable pairs over the
// protocol itself (no topology flag needed, like http mode).
func newWireDriver(target, class string, conns, pipeline int) (*wireDriver, []pairSpec, error) {
	addr := strings.TrimPrefix(strings.TrimPrefix(target, "http://"), "tcp://")
	c, err := wire.Dial(wire.ClientOptions{Addr: addr, Conns: conns, Pipeline: pipeline})
	if err != nil {
		return nil, nil, fmt.Errorf("wire dial %s: %w", addr, err)
	}
	idx, ok := c.ClassIndex(class)
	if !ok {
		c.Close()
		return nil, nil, fmt.Errorf("wire: daemon has no class %q (classes: %s)", class, strings.Join(c.Classes(), ", "))
	}
	routes, err := c.Routes(idx)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	pairs := make([]pairSpec, 0, len(routes))
	for _, r := range routes {
		pairs = append(pairs, pairSpec{src: int(r.Src), dst: int(r.Dst)})
	}
	d := &wireDriver{c: c, class: idx}
	d.pool.New = func() any { return &wireScratch{} }
	return d, pairs, nil
}

func (d *wireDriver) close() error { return d.c.Close() }

func (d *wireDriver) admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error) {
	sc := d.pool.Get().(*wireScratch)
	defer d.pool.Put(sc)
	sc.reqs = sc.reqs[:0]
	for _, p := range pairs {
		sc.reqs = append(sc.reqs, wire.AdmitReq{Class: d.class, Src: uint32(p.src), Dst: uint32(p.dst)})
	}
	res, err := d.c.Admit(sc.reqs, sc.res[:0])
	sc.res = res
	if err != nil {
		return ids, 0, err
	}
	rejected := 0
	for _, r := range res {
		switch {
		case r.Status == wire.StatusOK:
			ids = append(ids, r.ID)
		case wire.StatusRejected(r.Status):
			rejected++
		default:
			return ids, rejected, fmt.Errorf("wire admit: %w", r.Err())
		}
	}
	return ids, rejected, nil
}

func (d *wireDriver) teardown(ids []uint64) error {
	sc := d.pool.Get().(*wireScratch)
	defer d.pool.Put(sc)
	statuses, err := d.c.Teardown(ids, sc.statuses[:0])
	sc.statuses = statuses
	if err != nil {
		return err
	}
	for i, st := range statuses {
		if st != wire.StatusOK {
			return fmt.Errorf("wire teardown of %d: %w", ids[i], wire.StatusErr(st))
		}
	}
	return nil
}
