package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// overloadScenario is a line:2 overload: ~3600 Erlangs of strongly
// bursty traffic (IDC 769) against ~1250 flows of verified capacity
// per direction, split 10/20/70 across three tenants.
func overloadScenario(policySpec string) scenarioConfig {
	return scenarioConfig{
		topo: "line:2", alpha: 0.40, class: "voice",
		arrivals: "mmpp:high=300,low=0,on=2,off=8",
		mix:      "gold=1,silver=2,bronze=7",
		holding:  60, horizon: 120, seed: 42,
		policySpec: policySpec,
	}
}

// TestScenarioSLOCascade is the overload-behavior experiment in
// miniature: under an SLO-gated policy the critical tenant rides
// through a burst overload with zero rejects while the sheddable
// tenant absorbs them, and the load signal caps the pool below the
// standard threshold. The always-admit baseline on the identical
// workload rejects every tier roughly uniformly.
func TestScenarioSLOCascade(t *testing.T) {
	gated, err := runScenario(overloadScenario(
		"slo_gated:standard=0.9,sheddable=0.7,gold=critical,silver=standard,bronze=sheddable"))
	if err != nil {
		t.Fatal(err)
	}
	gold, bronze := gated.Tiers["gold"], gated.Tiers["bronze"]
	if gold == nil || bronze == nil {
		t.Fatalf("missing tiers in %v", gated.Tiers)
	}
	if gold.Blocked != 0 {
		t.Errorf("critical tenant rejected %d times under slo_gated, want 0", gold.Blocked)
	}
	if bronze.RejectPolicy == 0 || bronze.Blocking() < 0.3 {
		t.Errorf("sheddable tenant = %+v, want substantial policy shedding", bronze)
	}
	if gated.PeakUtil > 0.91 {
		t.Errorf("peak util %.3f, want capped near the standard threshold", gated.PeakUtil)
	}
	if gated.Overall.Offered != gated.Overall.Admitted+gated.Overall.Blocked {
		t.Errorf("outcomes don't sum: %+v", gated.Overall)
	}

	base, err := runScenario(overloadScenario("always_admit"))
	if err != nil {
		t.Fatal(err)
	}
	bGold := base.Tiers["gold"]
	if bGold == nil || bGold.Blocked == 0 {
		t.Errorf("always_admit gold = %+v, want capacity rejects (uniform pain)", bGold)
	}
	if bGold != nil && bGold.RejectPolicy != 0 {
		t.Errorf("always_admit produced %d policy rejects", bGold.RejectPolicy)
	}
	if base.PeakUtil < 0.99 {
		t.Errorf("always_admit peak util %.3f, want saturation", base.PeakUtil)
	}

	// Same seed → byte-identical replay.
	again, err := runScenario(overloadScenario("always_admit"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Error("scenario replay is not deterministic under a fixed seed")
	}

	// The report renders every tier with its ratio.
	var buf bytes.Buffer
	printScenarioReport(&buf, overloadScenario("always_admit"), base)
	out := buf.String()
	for _, want := range []string{"gold", "silver", "bronze", "peak_util", "Erlangs"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioTokenBucketVirtualTime replays against a token-bucket
// policy on the virtual clock: with the default bucket refilling at 5
// flows/s against ~60 offered/s during bursts, most attempts are
// rate-rejected — far more than capacity alone would refuse — and the
// count is exactly reproducible.
func TestScenarioTokenBucketVirtualTime(t *testing.T) {
	cfg := overloadScenario("token_bucket:rate=5,burst=10")
	cfg.mix = "" // untenanted: everything shares the default bucket
	rep, err := runScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Tiers["voice"]
	if o == nil {
		t.Fatalf("no voice tier in %v", rep.Tiers)
	}
	if o.RejectPolicy == 0 {
		t.Fatal("no rate rejections from the token bucket")
	}
	// Refill is bounded by rate·horizon + burst on the virtual clock;
	// the realized count sits well below it because credit accumulated
	// during the ~8s silent gaps clamps to the 10-token burst cap.
	maxAdmits := int(5*cfg.horizon) + 10
	if o.Admitted > maxAdmits {
		t.Errorf("admitted %d, over the virtual-time refill bound %d", o.Admitted, maxAdmits)
	}
	if o.Admitted < maxAdmits/6 {
		t.Errorf("admitted %d, want a refill-dominated count near %d/3 (clock not advancing?)", o.Admitted, maxAdmits)
	}

	again, err := runScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("token-bucket replay is not deterministic under a fixed seed")
	}
}

func TestScenarioSpecErrors(t *testing.T) {
	bad := []scenarioConfig{
		func() scenarioConfig { c := overloadScenario(""); c.arrivals = "uniform:rate=1"; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.arrivals = "poisson:rate=zero"; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.arrivals = "mmpp:high=1"; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.arrivals = "poisson:rate=1,extra=2"; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.mix = "gold"; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.mix = "gold=-1"; return c }(),
		func() scenarioConfig { c := overloadScenario("nope:spec"); return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.horizon = 0; return c }(),
		func() scenarioConfig { c := overloadScenario(""); c.class = "nope"; return c }(),
	}
	for i, cfg := range bad {
		if _, err := runScenario(cfg); err == nil {
			t.Errorf("case %d: %+v ran", i, cfg)
		}
	}
}
