package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// shortCfg is a fast closed-loop window for tests.
func shortCfg(mode string, conc, batch int) loadConfig {
	return loadConfig{
		mode: mode, class: "voice", conc: conc, batch: batch,
		hold: 8, duration: 150 * time.Millisecond, durability: "off",
	}
}

// TestInprocClosedLoop runs the in-process driver in both singleton and
// batch shapes: flows must be admitted, every worker must drain on
// exit (the controller ends with zero active flows), and the latency
// quantiles must be ordered.
func TestInprocClosedLoop(t *testing.T) {
	for _, batch := range []int{0, 8} {
		d, pairs, err := newInprocDriver("mci", "voice", 0.40, "off", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) == 0 {
			t.Fatal("no routed pairs on mci")
		}
		rep, err := runLoad(d, pairs, shortCfg("inproc", 4, batch))
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if rep.Admitted == 0 {
			t.Errorf("batch=%d: nothing admitted", batch)
		}
		if rep.Errors != 0 {
			t.Errorf("batch=%d: %d errors", batch, rep.Errors)
		}
		if rep.P99 < rep.P50 {
			t.Errorf("batch=%d: p99 %s < p50 %s", batch, rep.P99, rep.P50)
		}
		if act := d.ctrl.Stats().Active; act != 0 {
			t.Errorf("batch=%d: %d flows leaked after drain", batch, act)
		}
	}
}

// TestInprocDurable runs the closed loop with the WAL journal on in
// both fsync modes: the flows must still admit and drain, and the
// driver must clean up the temp WAL directory it created.
func TestInprocDurable(t *testing.T) {
	for _, durability := range []string{"async", "sync"} {
		d, pairs, err := newInprocDriver("mci", "voice", 0.40, durability, "")
		if err != nil {
			t.Fatal(err)
		}
		cfg := shortCfg("inproc", 2, 4)
		cfg.durability = durability
		rep, err := runLoad(d, pairs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", durability, err)
		}
		if rep.Admitted == 0 {
			t.Errorf("%s: nothing admitted", durability)
		}
		if rep.Errors != 0 {
			t.Errorf("%s: %d errors", durability, rep.Errors)
		}
		if act := d.ctrl.Stats().Active; act != 0 {
			t.Errorf("%s: %d flows leaked after drain", durability, act)
		}
		tmp := d.tmpDir
		if tmp == "" {
			t.Fatalf("%s: driver did not create a temp WAL dir", durability)
		}
		if err := d.close(); err != nil {
			t.Fatalf("%s: close: %v", durability, err)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Errorf("%s: temp WAL dir %s not removed", durability, tmp)
		}
	}
}

// stubDaemon is a minimal in-memory stand-in for ubacd's flow API: it
// hands out IDs, tracks the live set, and rejects past a capacity cap.
type stubDaemon struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]bool
	cap    int
}

func (s *stubDaemon) admitOne() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.live) >= s.cap {
		return 0, false
	}
	s.nextID++
	s.live[s.nextID] = true
	return s.nextID, true
}

func (s *stubDaemon) drop(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.live[id] {
		return false
	}
	delete(s.live, id)
	return true
}

func (s *stubDaemon) active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/routes", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"routes": []map[string]string{
			{"src": "A", "dst": "B"}, {"src": "B", "dst": "A"},
		}})
	})
	mux.HandleFunc("/v1/flows", func(w http.ResponseWriter, r *http.Request) {
		if id, ok := s.admitOne(); ok {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(map[string]uint64{"id": id})
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc("/v1/flows/", func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/v1/flows/"), 10, 64)
		if s.drop(id) {
			w.WriteHeader(http.StatusNoContent)
		} else {
			w.WriteHeader(http.StatusNotFound)
		}
	})
	mux.HandleFunc("/v1/flows:batch", func(w http.ResponseWriter, r *http.Request) {
		var req wireBatchReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		resp := map[string]any{}
		admits := make([]map[string]any, 0, len(req.Admit))
		for range req.Admit {
			if id, ok := s.admitOne(); ok {
				admits = append(admits, map[string]any{"id": id})
			} else {
				admits = append(admits, map[string]any{"error": "capacity", "reason": "capacity"})
			}
		}
		tears := make([]map[string]any, 0, len(req.Teardown))
		for _, id := range req.Teardown {
			tears = append(tears, map[string]any{"ok": s.drop(id)})
		}
		resp["admit"], resp["teardown"] = admits, tears
		json.NewEncoder(w).Encode(resp)
	})
	return mux
}

// TestHTTPDriverStub drives the HTTP driver against a stub daemon in
// both singleton and batch shapes: pair discovery, admits, rejections
// past capacity, and the end-of-run drain must all flow through the
// same wire contract ubacd serves.
func TestHTTPDriverStub(t *testing.T) {
	for _, batch := range []int{0, 4} {
		stub := &stubDaemon{live: map[uint64]bool{}, cap: 24}
		ts := httptest.NewServer(stub.handler())
		d, pairs, err := newHTTPDriver(ts.URL, "voice", 4)
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		if len(pairs) != 2 {
			t.Fatalf("discovered pairs: %v", pairs)
		}
		rep, err := runLoad(d, pairs, shortCfg("http", 4, batch))
		if err != nil {
			ts.Close()
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if rep.Admitted == 0 {
			t.Errorf("batch=%d: nothing admitted", batch)
		}
		if rep.Errors != 0 {
			t.Errorf("batch=%d: %d transport errors", batch, rep.Errors)
		}
		if act := stub.active(); act != 0 {
			t.Errorf("batch=%d: stub still holds %d flows after drain", batch, act)
		}
		// 4 workers holding 8 each against cap 24 guarantees rejections.
		if rep.Rejected == 0 {
			t.Errorf("batch=%d: expected capacity rejections at cap %d", batch, stub.cap)
		}
		ts.Close()
	}
}

// TestPrintReportBenchLine checks the -bench output is in go-test
// benchmark format so tools/benchjson can parse it.
func TestPrintReportBenchLine(t *testing.T) {
	var buf bytes.Buffer
	cfg := shortCfg("inproc", 2, 16)
	cfg.bench = true
	printReport(&buf, cfg, &report{
		Elapsed: time.Second, Admitted: 900, Rejected: 100, Rounds: 1000,
		P50: time.Microsecond, P99: 3 * time.Microsecond, Max: 9 * time.Microsecond,
	})
	out := buf.String()
	want := "BenchmarkUbacload/mode=inproc/conc=2/batch=16 \t1000\t"
	if !strings.Contains(out, want) {
		t.Fatalf("bench line missing %q in:\n%s", want, out)
	}
	if !strings.Contains(out, "ns/op") || !strings.Contains(out, "admits/s") {
		t.Fatalf("bench units missing in:\n%s", out)
	}
	if !strings.Contains(out, "reject_ratio") || !strings.Contains(out, "0.1000") {
		t.Fatalf("reject ratio missing in:\n%s", out)
	}
}
