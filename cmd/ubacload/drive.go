package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
	"ubac/internal/wal"
)

type loadConfig struct {
	mode       string
	target     string
	targets    string // comma-separated cluster node list (wire transport)
	transport  string // remote codec for http mode: http | wire
	topo       string
	alpha      float64
	class      string
	conc       int
	duration   time.Duration
	batch      int
	hold       int
	conns      int // wire transport: TCP connections
	pipeline   int // wire transport: outstanding frames per connection
	bench      bool
	durability string // inproc WAL mode: off | async | sync
	dataDir    string // WAL directory ("" = temp dir, removed on exit)
}

// pairSpec is one admittable (src, dst) router pair; indices drive the
// in-process controller, names drive the HTTP API.
type pairSpec struct {
	src, dst   int
	srcN, dstN string
}

// report is the aggregated outcome of one closed-loop run.
type report struct {
	Elapsed       time.Duration
	Admitted      uint64
	Rejected      uint64
	Errors        uint64 // transport/protocol failures, not admission rejections
	Rounds        uint64 // admission round-trips observed by the latency histogram
	P50, P99, Max time.Duration

	// Fast-path outcome deltas over the run (fpCounts after − before),
	// present when the driver can observe them.
	FP     fpCounts
	HaveFP bool
}

// fpCounts mirrors admission.FastPathStats across the wire boundary:
// the inproc driver reads the controller directly, the HTTP driver
// scrapes ubac_admit_fastpath_total from /metrics.
type fpCounts struct {
	hits, stale, fallback uint64
}

// hitRatio is hits over all decisions the fast path saw.
func (c fpCounts) hitRatio() float64 {
	total := c.hits + c.stale + c.fallback
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

func (c fpCounts) sub(prev fpCounts) fpCounts {
	d := fpCounts{}
	if c.hits > prev.hits {
		d.hits = c.hits - prev.hits
	}
	if c.stale > prev.stale {
		d.stale = c.stale - prev.stale
	}
	if c.fallback > prev.fallback {
		d.fallback = c.fallback - prev.fallback
	}
	return d
}

// fastpather is implemented by drivers that can report cumulative
// fast-path outcome counters; ok is false when the target cannot
// (e.g. a daemon predating the metric).
type fastpather interface {
	fastpath() (fpCounts, bool)
}

// driver is one admission backend. Implementations must be safe for
// concurrent use by -conc workers.
type driver interface {
	// admit attempts every pair and appends the IDs of admitted flows
	// to ids, returning the extended slice and the rejection count.
	admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error)
	teardown(ids []uint64) error
}

// runLoad drives the closed loop: each worker admits (singleton or
// batch), holds up to cfg.hold flows, tears down the oldest beyond the
// hold, and drains completely when the window closes.
func runLoad(d driver, pairs []pairSpec, cfg loadConfig) (*report, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no admittable pairs for class %q", cfg.class)
	}
	batch := cfg.batch
	if batch < 1 {
		batch = 1
	}
	hist := telemetry.NewRegistry().Histogram("ubacload_round_trip_seconds", "admission round-trip latency")
	var admitted, rejected, errs atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				held  []uint64
				next  = w // round-robin origin differs per worker
				items = make([]pairSpec, batch)
			)
			for !stop.Load() {
				for i := range items {
					items[i] = pairs[next%len(pairs)]
					next++
				}
				t0 := time.Now()
				ids, rej, err := d.admit(items, held)
				hist.Observe(time.Since(t0))
				if err != nil {
					errs.Add(1)
					continue
				}
				admitted.Add(uint64(len(ids) - len(held)))
				rejected.Add(uint64(rej))
				held = ids
				if over := len(held) - cfg.hold; over > 0 {
					if err := d.teardown(held[:over]); err != nil {
						errs.Add(1)
					}
					held = append(held[:0], held[over:]...)
				}
			}
			if len(held) > 0 {
				if err := d.teardown(held); err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	return &report{
		Elapsed:  time.Since(start),
		Admitted: admitted.Load(),
		Rejected: rejected.Load(),
		Errors:   errs.Load(),
		Rounds:   hist.Count(),
		P50:      hist.Quantile(0.5),
		P99:      hist.Quantile(0.99),
		Max:      hist.Max(),
	}, nil
}

// routedPairs enumerates the (src, dst) pairs the controller can admit
// for the class, with router names resolved for the HTTP wire.
func routedPairs(net *topology.Network, ctrl *admission.Controller, class string) ([]pairSpec, error) {
	set, err := ctrl.ClassRoutes(class)
	if err != nil {
		return nil, err
	}
	pairs := make([]pairSpec, 0, set.Len())
	for i := 0; i < set.Len(); i++ {
		rt := set.Route(i)
		pairs = append(pairs, pairSpec{
			src: rt.Src, dst: rt.Dst,
			srcN: net.Router(rt.Src).Name, dstN: net.Router(rt.Dst).Name,
		})
	}
	return pairs, nil
}

// inprocDriver drives an admission.Controller in this process — the
// same configure-then-admit pipeline ubacd runs, minus the HTTP layer.
// With -durability it journals through a real wal.Log, measuring the
// group-commit cost without HTTP noise.
type inprocDriver struct {
	ctrl  *admission.Controller
	class string
	pool  sync.Pool // *inprocScratch

	wal    *wal.Log
	tmpDir string // removed by close when the WAL dir was ours
}

type inprocScratch struct {
	items   []admission.BatchItem
	results []admission.BatchResult
	fids    []admission.FlowID
	errs    []error
}

func newInprocDriver(topo, class string, alpha float64, durability, dataDir string) (*inprocDriver, []pairSpec, error) {
	net, err := topology.Parse(topo)
	if err != nil {
		return nil, nil, err
	}
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		return nil, nil, err
	}
	dep, err := sys.Configure(map[string]float64{"voice": alpha})
	if err != nil {
		return nil, nil, err
	}
	if !dep.Safe() {
		return nil, nil, fmt.Errorf("alpha=%.3f does not verify on %s; refusing to generate load against an unsafe configuration", alpha, net.Name())
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		return nil, nil, err
	}
	pairs, err := routedPairs(net, ctrl, class)
	if err != nil {
		return nil, nil, err
	}
	d := &inprocDriver{ctrl: ctrl, class: class}
	d.pool.New = func() any { return &inprocScratch{} }
	if durability != "" && durability != "off" {
		dir := dataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "ubacload-wal-*")
			if err != nil {
				return nil, nil, err
			}
			d.tmpDir = dir
		}
		mode := wal.ModeAsync
		if durability == "sync" {
			mode = wal.ModeSync
		}
		d.wal, err = wal.Open(wal.Options{Dir: dir, Mode: mode, Fingerprint: ctrl.Fingerprint()})
		if err != nil {
			return nil, nil, err
		}
		ctrl.SetJournal(d.wal)
	}
	return d, pairs, nil
}

// close flushes and stops the WAL (when durability was on) and removes
// the temp directory the driver created for it.
func (d *inprocDriver) close() error {
	var err error
	if d.wal != nil {
		err = d.wal.Close()
	}
	if d.tmpDir != "" {
		if rmErr := os.RemoveAll(d.tmpDir); err == nil {
			err = rmErr
		}
	}
	return err
}

func (d *inprocDriver) admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error) {
	sc := d.pool.Get().(*inprocScratch)
	defer d.pool.Put(sc)
	if len(pairs) == 1 {
		id, err := d.ctrl.Admit(d.class, pairs[0].src, pairs[0].dst)
		if err != nil {
			return ids, 1, nil
		}
		return append(ids, uint64(id)), 0, nil
	}
	sc.items = sc.items[:0]
	for _, p := range pairs {
		sc.items = append(sc.items, admission.BatchItem{Class: d.class, Src: p.src, Dst: p.dst})
	}
	sc.results = d.ctrl.AdmitBatch(sc.items, sc.results[:0])
	rejected := 0
	for _, r := range sc.results {
		if r.Err != nil {
			rejected++
			continue
		}
		ids = append(ids, uint64(r.ID))
	}
	return ids, rejected, nil
}

// fastpath reports the controller's cumulative fast-path counters.
func (d *inprocDriver) fastpath() (fpCounts, bool) {
	st := d.ctrl.FastPathStats()
	return fpCounts{hits: st.Hits, stale: st.Stale, fallback: st.Fallback}, true
}

func (d *inprocDriver) teardown(ids []uint64) error {
	sc := d.pool.Get().(*inprocScratch)
	defer d.pool.Put(sc)
	if len(ids) == 1 {
		return d.ctrl.Teardown(admission.FlowID(ids[0]))
	}
	sc.fids = sc.fids[:0]
	for _, id := range ids {
		sc.fids = append(sc.fids, admission.FlowID(id))
	}
	sc.errs = d.ctrl.TeardownBatch(sc.fids, sc.errs[:0])
	for _, err := range sc.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// httpDriver drives a live ubacd over its public API: POST /v1/flows
// and DELETE /v1/flows/{id} for singletons, POST /v1/flows:batch when
// the batch size exceeds one.
type httpDriver struct {
	base   string
	class  string
	client *http.Client
	bufs   sync.Pool // *bytes.Buffer, reused across request encode + response read
}

// Wire shapes of the ubacd API (cmd packages cannot import each other,
// so the contract is restated here and covered by TestHTTPDriverStub).
type wireFlowReq struct {
	Class string `json:"class"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
}

type wireBatchReq struct {
	Admit    []wireFlowReq `json:"admit,omitempty"`
	Teardown []uint64      `json:"teardown,omitempty"`
}

type wireBatchResp struct {
	Admit []struct {
		ID    uint64 `json:"id"`
		Error string `json:"error"`
	} `json:"admit"`
	Teardown []struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	} `json:"teardown"`
}

func newHTTPDriver(target, class string, conc int) (*httpDriver, []pairSpec, error) {
	d := &httpDriver{
		base:  target,
		class: class,
		client: &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        conc + 2,
				MaxIdleConnsPerHost: conc + 2,
			},
		},
	}
	pairs, err := d.discoverPairs()
	return d, pairs, err
}

// discoverPairs asks the daemon which pairs its verified configuration
// routes for the class, so the harness needs no topology flag in http
// mode.
func (d *httpDriver) discoverPairs() ([]pairSpec, error) {
	resp, err := d.client.Get(d.base + "/v1/routes?class=" + d.class)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/routes: status %d", resp.StatusCode)
	}
	var out struct {
		Routes []struct {
			Src string `json:"src"`
			Dst string `json:"dst"`
		} `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	pairs := make([]pairSpec, 0, len(out.Routes))
	for _, r := range out.Routes {
		pairs = append(pairs, pairSpec{srcN: r.Src, dstN: r.Dst})
	}
	return pairs, nil
}

func (d *httpDriver) postJSON(path string, body, out any) (int, error) {
	// Encode into a pooled buffer instead of a fresh allocation per
	// request; the closed loop re-posts the same shapes millions of
	// times.
	buf, _ := d.bufs.Get().(*bytes.Buffer)
	if buf == nil {
		buf = &bytes.Buffer{}
	}
	defer d.bufs.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		return 0, err
	}
	resp, err := d.client.Post(d.base+path, "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	// Drain whatever the decoder left (at least the handler's trailing
	// newline) — an undrained body makes the transport close the
	// connection instead of returning it to the idle pool, so every
	// request would pay a fresh TCP handshake.
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func (d *httpDriver) admit(pairs []pairSpec, ids []uint64) ([]uint64, int, error) {
	if len(pairs) == 1 {
		var out struct {
			ID uint64 `json:"id"`
		}
		code, err := d.postJSON("/v1/flows", wireFlowReq{Class: d.class, Src: pairs[0].srcN, Dst: pairs[0].dstN}, &out)
		if err != nil {
			return ids, 0, err
		}
		switch code {
		case http.StatusCreated:
			return append(ids, out.ID), 0, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			// Capacity/reserve (503) and rate/shed (429) refusals are all
			// admission rejections from the load generator's viewpoint.
			return ids, 1, nil
		default:
			return ids, 0, fmt.Errorf("POST /v1/flows: status %d", code)
		}
	}
	req := wireBatchReq{Admit: make([]wireFlowReq, len(pairs))}
	for i, p := range pairs {
		req.Admit[i] = wireFlowReq{Class: d.class, Src: p.srcN, Dst: p.dstN}
	}
	var out wireBatchResp
	code, err := d.postJSON("/v1/flows:batch", req, &out)
	if err != nil {
		return ids, 0, err
	}
	if code != http.StatusOK {
		return ids, 0, fmt.Errorf("POST /v1/flows:batch: status %d", code)
	}
	rejected := 0
	for _, r := range out.Admit {
		if r.Error != "" {
			rejected++
			continue
		}
		ids = append(ids, r.ID)
	}
	return ids, rejected, nil
}

// fastpath scrapes ubac_admit_fastpath_total from the daemon's
// /metrics exposition. ok is false when the scrape fails or the
// metric is absent.
func (d *httpDriver) fastpath() (fpCounts, bool) {
	resp, err := d.client.Get(d.base + "/metrics")
	if err != nil {
		return fpCounts{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fpCounts{}, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fpCounts{}, false
	}
	c, ok := fpCounts{}, false
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "ubac_admit_fastpath_total{") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		v, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.Contains(f[0], `outcome="hit"`):
			c.hits, ok = v, true
		case strings.Contains(f[0], `outcome="stale"`):
			c.stale, ok = v, true
		case strings.Contains(f[0], `outcome="fallback"`):
			c.fallback, ok = v, true
		}
	}
	return c, ok
}

func (d *httpDriver) teardown(ids []uint64) error {
	if len(ids) == 1 {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/flows/%d", d.base, ids[0]), nil)
		if err != nil {
			return err
		}
		resp, err := d.client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("DELETE /v1/flows/%d: status %d", ids[0], resp.StatusCode)
		}
		return nil
	}
	var out wireBatchResp
	code, err := d.postJSON("/v1/flows:batch", wireBatchReq{Teardown: ids}, &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("batch teardown: status %d", code)
	}
	for i, r := range out.Teardown {
		if !r.OK {
			return fmt.Errorf("batch teardown of %d: %s", ids[i], r.Error)
		}
	}
	return nil
}
