// Command ubacload is the closed-loop admission load harness: it
// drives either an in-process admission.Controller or a live ubacd
// daemon over HTTP at a configurable concurrency and arrival mix, and
// reports admitted/s, reject ratio and p50/p99 decision latency from a
// telemetry histogram.
//
//	ubacload -mode inproc -topology mci -alpha 0.40 -conc 16 -duration 5s
//	ubacload -mode http -target http://localhost:8080 -conc 64 -batch 32
//
// A third mode replays a generated multi-tenant workload (Poisson or
// bursty MMPP/on-off arrivals) in virtual time against an in-process
// controller with an admission policy installed, reporting per-tier
// reject ratios — the overload-behavior experiment:
//
//	ubacload -mode scenario -arrivals mmpp:high=50,low=0,on=2,off=8 \
//	  -policy slo_gated:standard=0.9,sheddable=0.7,gold=critical,bronze=sheddable \
//	  -mix gold=1,silver=2,bronze=7 -horizon 600 -seed 42
//
// Each worker runs a closed loop: admit (singleton or batch), hold up
// to -hold flows, tear the oldest down once the hold fills, repeat
// until -duration elapses, then drain everything it still holds — so a
// run leaves the target with zero residual flows. With -bench the
// summary is followed by go-test-format benchmark lines on stdout,
// pipeable through tools/benchjson into BENCH_admission.json:
//
//	ubacload -mode inproc -bench | go run ./tools/benchjson
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"
)

func main() {
	cfg := loadConfig{}
	flag.StringVar(&cfg.mode, "mode", "inproc", "inproc (drive a controller in this process) | http (drive a live ubacd) | scenario (open-loop replay, see -arrivals)")
	flag.StringVar(&cfg.target, "target", "http://localhost:8080", "ubacd base URL (http mode) or host:port (wire transport)")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated host:port list of cluster nodes (implies -transport wire): admits round-robin across nodes, teardowns return to the admitting node; the report breaks throughput out per node")
	flag.StringVar(&cfg.transport, "transport", "http", "remote transport: http (JSON API) | wire (binary framed protocol against ubacd -wire)")
	flag.IntVar(&cfg.conns, "conns", 1, "wire transport: TCP connections to spread calls across")
	flag.IntVar(&cfg.pipeline, "pipeline", 32, "wire transport: outstanding frames per connection (callers beyond it block)")
	flag.StringVar(&cfg.topo, "topology", "mci", "topology spec (inproc mode): mci | nsfnet | line:N | ... | @file.json")
	flag.Float64Var(&cfg.alpha, "alpha", 0.40, "utilization assignment (inproc mode)")
	flag.StringVar(&cfg.class, "class", "voice", "traffic class to admit")
	flag.IntVar(&cfg.conc, "conc", runtime.GOMAXPROCS(0), "concurrent closed-loop workers")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "measurement window")
	flag.IntVar(&cfg.batch, "batch", 0, "operations per request: 0 or 1 = singleton Admit, N>1 = AdmitBatch / POST /v1/flows:batch")
	flag.IntVar(&cfg.hold, "hold", 64, "flows each worker holds before the closed loop starts tearing down")
	flag.BoolVar(&cfg.bench, "bench", false, "also emit go-test-format benchmark lines for tools/benchjson")
	flag.StringVar(&cfg.durability, "durability", "off", "inproc mode: journal every decision through a WAL: off | async | sync")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "WAL directory for -durability (empty = temp dir, removed on exit)")
	scn := scenarioConfig{}
	flag.StringVar(&scn.policySpec, "policy", "", "scenario mode: admission policy spec (see ubacd -policy; empty = always_admit)")
	flag.StringVar(&scn.arrivals, "arrivals", "poisson:rate=10", "scenario mode: arrival process: poisson:rate=R | mmpp:high=H,low=L,on=S,off=S")
	flag.StringVar(&scn.mix, "mix", "", "scenario mode: weighted tenant mix, tenant=weight[,tenant=weight...] (empty = untenanted)")
	flag.Float64Var(&scn.holding, "holding", 60, "scenario mode: mean call holding time, virtual seconds")
	flag.Float64Var(&scn.horizon, "horizon", 600, "scenario mode: generated window, virtual seconds")
	flag.Int64Var(&scn.seed, "seed", 1, "scenario mode: workload seed (same seed = same replay)")
	flag.Parse()

	// -targets is a multi-node cluster run, which only the wire
	// transport can drive (flow IDs carry the admitting node).
	if cfg.targets != "" {
		if cfg.transport != "wire" {
			transportSet := false
			flag.Visit(func(f *flag.Flag) { transportSet = transportSet || f.Name == "transport" })
			if transportSet {
				log.Fatalf("ubacload: -targets requires -transport wire (got %q)", cfg.transport)
			}
			cfg.transport = "wire"
		}
	}
	// -transport wire is inherently a remote run: promote the default
	// mode so `ubacload -transport wire -target host:port` just works.
	if cfg.transport == "wire" {
		modeSet := false
		flag.Visit(func(f *flag.Flag) { modeSet = modeSet || f.Name == "mode" })
		if !modeSet {
			cfg.mode = "http"
		} else if cfg.mode != "http" {
			log.Fatalf("ubacload: -transport wire requires -mode http (got %q)", cfg.mode)
		}
	}

	if cfg.mode == "scenario" {
		scn.topo, scn.alpha, scn.class = cfg.topo, cfg.alpha, cfg.class
		rep, err := runScenario(scn)
		if err != nil {
			log.Fatalf("ubacload: %v", err)
		}
		printScenarioReport(os.Stdout, scn, rep)
		return
	}
	if cfg.conc < 1 || cfg.hold < 1 || cfg.batch < 0 || cfg.duration <= 0 {
		log.Fatal("ubacload: -conc and -hold must be >= 1, -batch >= 0, -duration > 0")
	}
	switch cfg.durability {
	case "off", "async", "sync":
	default:
		log.Fatalf("ubacload: -durability %q not one of off|async|sync", cfg.durability)
	}
	if cfg.durability != "off" && cfg.mode != "inproc" {
		log.Fatal("ubacload: -durability applies to -mode inproc (http mode measures whatever the daemon was started with)")
	}
	var (
		d     driver
		pairs []pairSpec
		err   error
	)
	switch cfg.mode {
	case "inproc":
		d, pairs, err = newInprocDriver(cfg.topo, cfg.class, cfg.alpha, cfg.durability, cfg.dataDir)
	case "http":
		switch cfg.transport {
		case "http", "":
			d, pairs, err = newHTTPDriver(cfg.target, cfg.class, cfg.conc)
		case "wire":
			if cfg.targets != "" {
				d, pairs, err = newMultiDriver(strings.Split(cfg.targets, ","), cfg.class, cfg.conns, cfg.pipeline)
			} else {
				d, pairs, err = newWireDriver(cfg.target, cfg.class, cfg.conns, cfg.pipeline)
			}
		default:
			err = fmt.Errorf("unknown -transport %q (http | wire)", cfg.transport)
		}
	default:
		err = fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if err != nil {
		log.Fatalf("ubacload: %v", err)
	}
	var fpBefore fpCounts
	fp, haveFP := d.(fastpather)
	if haveFP {
		fpBefore, haveFP = fp.fastpath()
	}
	rep, err := runLoad(d, pairs, cfg)
	if err != nil {
		log.Fatalf("ubacload: %v", err)
	}
	if haveFP {
		if after, ok := fp.fastpath(); ok {
			rep.FP = after.sub(fpBefore)
			rep.HaveFP = true
		}
	}
	var perNode []struct {
		Addr     string
		Admitted uint64
	}
	if md, ok := d.(*multiDriver); ok {
		perNode = md.perNode()
	}
	if c, ok := d.(interface{ close() error }); ok {
		if err := c.close(); err != nil {
			log.Printf("ubacload: close: %v", err)
		}
	}
	printReport(os.Stdout, cfg, rep)
	for _, n := range perNode {
		fmt.Printf("  node %s: admitted %d (%.0f admits/s)\n",
			n.Addr, n.Admitted, float64(n.Admitted)/rep.Elapsed.Seconds())
	}
}

// printReport writes the human summary and, with -bench, the
// benchjson-compatible benchmark lines.
func printReport(w io.Writer, cfg loadConfig, rep *report) {
	attempts := rep.Admitted + rep.Rejected
	ratio := 0.0
	if attempts > 0 {
		ratio = float64(rep.Rejected) / float64(attempts)
	}
	durTag := ""
	if cfg.durability != "" && cfg.durability != "off" {
		durTag = "/durability=" + cfg.durability
	}
	// Wire runs get their own bench series; http/inproc names stay as
	// PR 4 established them so baselines keep comparing.
	transTag, transNote := "", ""
	if cfg.transport == "wire" {
		transTag = fmt.Sprintf("/transport=wire/conns=%d/pipeline=%d", cfg.conns, cfg.pipeline)
		transNote = fmt.Sprintf(" transport=wire conns=%d pipeline=%d", cfg.conns, cfg.pipeline)
	}
	fmt.Fprintf(w, "ubacload: mode=%s%s conc=%d batch=%d hold=%d durability=%s elapsed=%s\n",
		cfg.mode, transNote, cfg.conc, cfg.batch, cfg.hold, cfg.durability, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  admitted %d (%.0f admits/s)  rejected %d (ratio %.4f)  errors %d\n",
		rep.Admitted, float64(rep.Admitted)/rep.Elapsed.Seconds(), rep.Rejected, ratio, rep.Errors)
	fmt.Fprintf(w, "  decision latency p50=%s p99=%s max=%s (%d round-trips)\n",
		rep.P50, rep.P99, rep.Max, rep.Rounds)
	if rep.HaveFP {
		fmt.Fprintf(w, "  fast-path hit ratio %.4f (hit %d stale %d fallback %d)\n",
			rep.FP.hitRatio(), rep.FP.hits, rep.FP.stale, rep.FP.fallback)
	}
	if cfg.bench && attempts > 0 {
		fpTag := ""
		if rep.HaveFP {
			fpTag = fmt.Sprintf("\t%.4f fastpath_hit_ratio", rep.FP.hitRatio())
		}
		fmt.Fprintf(w, "goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
		fmt.Fprintf(w, "BenchmarkUbacload/mode=%s%s/conc=%d/batch=%d%s \t%d\t%.1f ns/op\t%.0f admits/s\t%.4f reject_ratio%s\n",
			cfg.mode, transTag, cfg.conc, cfg.batch, durTag, attempts,
			float64(rep.Elapsed.Nanoseconds())/float64(attempts),
			float64(rep.Admitted)/rep.Elapsed.Seconds(), ratio, fpTag)
	}
}
