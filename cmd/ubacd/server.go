package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ubac/internal/admission"
	"ubac/internal/topology"
)

// server exposes a deployed admission controller over HTTP. Routes:
//
//	POST   /v1/flows                {"class","src","dst"} → {"id"}
//	DELETE /v1/flows/{id}
//	GET    /v1/stats
//	GET    /v1/headroom?class=&src=&dst=
//	GET    /v1/utilization?class=&link=A-B
//	GET    /healthz
//
// Router names are used in the API; the daemon resolves them against the
// configured topology.
type server struct {
	net  *topology.Network
	ctrl *admission.Controller
}

func newServer(net *topology.Network, ctrl *admission.Controller) *server {
	return &server{net: net, ctrl: ctrl}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/flows", s.handleFlows)
	mux.HandleFunc("/v1/flows/", s.handleFlowByID)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/headroom", s.handleHeadroom)
	mux.HandleFunc("/v1/utilization", s.handleUtilization)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// resolveRouter accepts a router name or numeric index.
func (s *server) resolveRouter(spec string) (int, error) {
	if id, ok := s.net.RouterByName(spec); ok {
		return id, nil
	}
	if n, err := strconv.Atoi(spec); err == nil && n >= 0 && n < s.net.NumRouters() {
		return n, nil
	}
	return 0, fmt.Errorf("unknown router %q", spec)
}

type flowRequest struct {
	Class string `json:"class"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req flowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	src, err := s.resolveRouter(req.Src)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	dst, err := s.resolveRouter(req.Dst)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	id, err := s.ctrl.Admit(req.Class, src, dst)
	switch {
	case err == nil:
		writeJSON(w, http.StatusCreated, map[string]any{"id": uint64(id)})
	case errors.Is(err, admission.ErrUnknownClass):
		writeErr(w, http.StatusNotFound, err.Error())
	case errors.Is(err, admission.ErrNoRoute):
		writeErr(w, http.StatusNotFound, err.Error())
	case errors.Is(err, admission.ErrCapacity):
		writeErr(w, http.StatusConflict, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *server) handleFlowByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/flows/")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid flow id")
		return
	}
	switch err := s.ctrl.Teardown(admission.FlowID(id)); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, admission.ErrUnknownFlow):
		writeErr(w, http.StatusNotFound, err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.Stats())
}

func (s *server) handleHeadroom(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	src, err := s.resolveRouter(q.Get("src"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	dst, err := s.resolveRouter(q.Get("dst"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	hr, err := s.ctrl.Headroom(q.Get("class"), src, dst)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"headroom": hr})
}

func (s *server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	link := q.Get("link")
	parts := strings.SplitN(link, "-", 2)
	if len(parts) != 2 {
		writeErr(w, http.StatusBadRequest, "link must be SrcRouter-DstRouter")
		return
	}
	a, err := s.resolveRouter(parts[0])
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	bb, err := s.resolveRouter(parts[1])
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	srv, ok := s.net.ServerFor(a, bb)
	if !ok {
		writeErr(w, http.StatusNotFound, "routers not adjacent")
		return
	}
	u, err := s.ctrl.Utilization(q.Get("class"), srv)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"utilization": u})
}
