package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ubac/internal/admission"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
)

// maxFlowBody bounds POST /v1/flows request bodies; an admission request
// is three short strings, so 64 KiB is already generous.
const maxFlowBody = 64 << 10

// server exposes a deployed admission controller over HTTP. Routes:
//
//	POST   /v1/flows                {"class","src","dst"} → {"id"}
//	POST   /v1/flows:batch          {"admit":[...],"teardown":[...]} → per-op results
//	DELETE /v1/flows/{id}
//	GET    /v1/stats
//	GET    /v1/events?limit=N       admission decision audit trail
//	GET    /v1/headroom?class=&src=&dst=
//	GET    /v1/utilization?class=&link=A-B
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz
//
// Router names are used in the API; the daemon resolves them against the
// configured topology. Rejection bodies carry a machine-readable
// "reason" field ("no_route" | "capacity" | "unknown_class" |
// "policy_token_bucket" | "policy_shed" | "policy_reserve") matching
// the event schema; statusForReason centralizes the reason → HTTP
// status mapping (429 for rate/shed conditions, 503 for capacity
// conditions, 404 for unknown names).
type server struct {
	net  *topology.Network
	ctrl *admission.Controller
	reg  *telemetry.Registry
	ring *telemetry.Ring

	// clustered disables the HTTP flow-mutation endpoints: on a cluster
	// node, admission rides the wire transport's edge lease plane, and
	// the local controller is either a pure ledger (authority) or idle
	// (follower) — HTTP admits would bypass the lease accounting.
	clustered bool

	// Fast-path outcome counters, advanced from the controller's
	// cumulative FastPathStats on each /metrics scrape (the controller
	// counts internally without a registry dependency; the exporter
	// bridges the two under fpMu).
	fpMu                       sync.Mutex
	fpLast                     admission.FastPathStats
	fpHit, fpStale, fpFallback *telemetry.Counter
}

func newServer(net *topology.Network, ctrl *admission.Controller,
	reg *telemetry.Registry, ring *telemetry.Ring) *server {
	s := &server{net: net, ctrl: ctrl, reg: reg, ring: ring}
	const fpHelp = "Admission decisions by fast-path outcome: hit (O(1) budget decrement), stale (lease refill), fallback (exact per-server walk)."
	s.fpHit = reg.Counter("ubac_admit_fastpath_total", fpHelp, telemetry.Label{Key: "outcome", Value: "hit"})
	s.fpStale = reg.Counter("ubac_admit_fastpath_total", fpHelp, telemetry.Label{Key: "outcome", Value: "stale"})
	s.fpFallback = reg.Counter("ubac_admit_fastpath_total", fpHelp, telemetry.Label{Key: "outcome", Value: "fallback"})
	return s
}

// syncFastPath folds the controller's cumulative fast-path counters
// into the registry as monotone per-outcome series. Hits are derived
// on the controller side and can transiently read low against a
// concurrent stale/fallback increment, so each series only advances.
func (s *server) syncFastPath() {
	s.fpMu.Lock()
	defer s.fpMu.Unlock()
	cur := s.ctrl.FastPathStats()
	if cur.Hits > s.fpLast.Hits {
		s.fpHit.Add(cur.Hits - s.fpLast.Hits)
		s.fpLast.Hits = cur.Hits
	}
	if cur.Stale > s.fpLast.Stale {
		s.fpStale.Add(cur.Stale - s.fpLast.Stale)
		s.fpLast.Stale = cur.Stale
	}
	if cur.Fallback > s.fpLast.Fallback {
		s.fpFallback.Add(cur.Fallback - s.fpLast.Fallback)
		s.fpLast.Fallback = cur.Fallback
	}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	flows, flowsBatch, flowByID := s.handleFlows, s.handleFlowsBatch, s.handleFlowByID
	if s.clustered {
		unavail := func(w http.ResponseWriter, r *http.Request) {
			writeErr(w, http.StatusServiceUnavailable,
				"cluster node: flow admission rides the wire transport (use a wire client against this node's -wire address)")
		}
		flows, flowsBatch, flowByID = unavail, unavail, unavail
	}
	mux.HandleFunc("/v1/flows", flows)
	mux.HandleFunc("/v1/flows:batch", flowsBatch)
	mux.HandleFunc("/v1/flows/", flowByID)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/events", s.handleEvents)
	mux.HandleFunc("/v1/headroom", s.handleHeadroom)
	mux.HandleFunc("/v1/utilization", s.handleUtilization)
	mux.HandleFunc("/v1/routes", s.handleRoutes)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeErrReason adds the machine-readable reason alongside the human
// message, mirroring the decision event schema.
func writeErrReason(w http.ResponseWriter, code int, msg, reason string) {
	writeJSON(w, code, map[string]string{"error": msg, "reason": reason})
}

// admitReason maps the admission sentinel errors to event-schema
// reasons.
func admitReason(err error) string {
	switch {
	case errors.Is(err, admission.ErrNoRoute):
		return "no_route"
	case errors.Is(err, admission.ErrCapacity):
		return "capacity"
	case errors.Is(err, admission.ErrUnknownClass):
		return "unknown_class"
	case errors.Is(err, admission.ErrUnknownFlow):
		return "unknown_flow"
	case errors.Is(err, admission.ErrShuttingDown):
		return "shutting_down"
	case errors.Is(err, admission.ErrPolicyRate):
		return "policy_token_bucket"
	case errors.Is(err, admission.ErrPolicyShed):
		return "policy_shed"
	case errors.Is(err, admission.ErrPolicyReserve):
		return "policy_reserve"
	default:
		return "internal"
	}
}

// statusForReason is the single reason → HTTP status mapping for every
// admission and teardown outcome. Client rate conditions (the caller
// can back off and retry) are 429; server capacity conditions are 503;
// names the configuration doesn't know are 404.
func statusForReason(reason string) int {
	switch reason {
	case "policy_token_bucket", "policy_shed":
		return http.StatusTooManyRequests
	case "capacity", "policy_reserve", "shutting_down":
		return http.StatusServiceUnavailable
	case "no_route", "unknown_class", "unknown_flow", "unknown_router":
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.syncFastPath()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// eventOut is one audit-trail event enriched with resolved names.
type eventOut struct {
	telemetry.Event
	SrcName        string `json:"src_name,omitempty"`
	DstName        string `json:"dst_name,omitempty"`
	BottleneckName string `json:"bottleneck_name,omitempty"`
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	events := s.ring.Snapshot(limit)
	out := make([]eventOut, 0, len(events))
	for _, ev := range events {
		eo := eventOut{Event: ev}
		if ev.Src >= 0 && ev.Src < s.net.NumRouters() {
			eo.SrcName = s.net.Router(ev.Src).Name
		}
		if ev.Dst >= 0 && ev.Dst < s.net.NumRouters() {
			eo.DstName = s.net.Router(ev.Dst).Name
		}
		if ev.Bottleneck >= 0 && ev.Bottleneck < s.net.NumServers() {
			eo.BottleneckName = s.net.ServerName(ev.Bottleneck)
		}
		out = append(out, eo)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":  s.ring.Total(),
		"events": out,
	})
}

// resolveRouter accepts a router name or numeric index.
func (s *server) resolveRouter(spec string) (int, error) {
	if id, ok := s.net.RouterByName(spec); ok {
		return id, nil
	}
	if n, err := strconv.Atoi(spec); err == nil && n >= 0 && n < s.net.NumRouters() {
		return n, nil
	}
	return 0, fmt.Errorf("unknown router %q", spec)
}

type flowRequest struct {
	Class string `json:"class"`
	// Tenant is optional: it feeds the installed admission policy
	// (token buckets key on it; SLO tiers may map it) and labels the
	// audit event.
	Tenant string `json:"tenant,omitempty"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
}

// decodeFlowRequest parses a POST /v1/flows body. It is total over
// arbitrary input (fuzz-tested): any reader either yields a request
// with all three fields present or an error, never a panic. Unknown
// fields and trailing data are rejected so malformed clients fail
// loudly instead of silently admitting the wrong flow.
func decodeFlowRequest(r io.Reader) (flowRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req flowRequest
	if err := dec.Decode(&req); err != nil {
		return flowRequest{}, err
	}
	if dec.More() {
		return flowRequest{}, errors.New("trailing data after request object")
	}
	if req.Class == "" || req.Src == "" || req.Dst == "" {
		return flowRequest{}, errFlowFields
	}
	return req, nil
}

func (s *server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxFlowBody)
	fc := flowCodecPool.Get().(*flowCodec)
	defer flowCodecPool.Put(fc)
	if err := fc.decode(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, "invalid request: "+err.Error())
		return
	}
	src, err := s.resolveRouter(fc.req.Src)
	if err != nil {
		writeErrReason(w, http.StatusNotFound, err.Error(), "unknown_router")
		return
	}
	dst, err := s.resolveRouter(fc.req.Dst)
	if err != nil {
		writeErrReason(w, http.StatusNotFound, err.Error(), "unknown_router")
		return
	}
	id, err := s.ctrl.AdmitWithTenant(fc.req.Class, fc.req.Tenant, src, dst)
	if err != nil {
		writeAdmitErr(w, err)
		return
	}
	fc.out = append(fc.out[:0], `{"id":`...)
	fc.out = strconv.AppendUint(fc.out, uint64(id), 10)
	fc.out = append(fc.out, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(fc.out)
}

func (s *server) handleFlowByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/flows/")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid flow id")
		return
	}
	if err := s.ctrl.Teardown(admission.FlowID(id)); err != nil {
		writeAdmitErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// routeOut is one configured route with its verified end-to-end bound.
type routeOut struct {
	Class    string  `json:"class"`
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Hops     int     `json:"hops"`
	BoundSec float64 `json:"bound_seconds"`
}

// handleRoutes lists every configured route with its verified
// worst-case end-to-end queueing bound, served from the controller's
// epoch-keyed route-delay cache (lookups show up in /metrics as
// ubac_route_cache_lookups_total). ?class= filters to one class.
func (s *server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	names := s.ctrl.Classes()
	if want := r.URL.Query().Get("class"); want != "" {
		names = []string{want}
	}
	out := make([]routeOut, 0, 64)
	for _, name := range names {
		set, err := s.ctrl.ClassRoutes(name)
		if err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		sums, err := s.ctrl.RouteDelays(name)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		for i := 0; i < set.Len(); i++ {
			rt := set.Route(i)
			out = append(out, routeOut{
				Class:    name,
				Src:      s.net.Router(rt.Src).Name,
				Dst:      s.net.Router(rt.Dst).Name,
				Hops:     rt.Hops(),
				BoundSec: sums[i],
			})
		}
	}
	hits, misses := s.ctrl.DelayCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"routes":       out,
		"cache_hits":   hits,
		"cache_misses": misses,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.ctrl.Stats())
}

func (s *server) handleHeadroom(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	src, err := s.resolveRouter(q.Get("src"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	dst, err := s.resolveRouter(q.Get("dst"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	hr, err := s.ctrl.Headroom(q.Get("class"), src, dst)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"headroom": hr})
}

func (s *server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	link := q.Get("link")
	parts := strings.SplitN(link, "-", 2)
	if len(parts) != 2 {
		writeErr(w, http.StatusBadRequest, "link must be SrcRouter-DstRouter")
		return
	}
	a, err := s.resolveRouter(parts[0])
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	bb, err := s.resolveRouter(parts[1])
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	srv, ok := s.net.ServerFor(a, bb)
	if !ok {
		writeErr(w, http.StatusNotFound, "routers not adjacent")
		return
	}
	u, err := s.ctrl.Utilization(q.Get("class"), srv)
	if err != nil {
		writeErr(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"utilization": u})
}
