package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// FuzzDecodeBatchRequest throws arbitrary bytes at the POST
// /v1/flows:batch body decoder through the same 64 KiB cap the
// handler applies: it must never panic, anything it accepts is
// non-empty with every admit entry fully populated and at most
// maxBatchOps operations, and the pooled codec must decode a known
// body identically right after — stale slices from the fuzzed request
// must not leak through the sync.Pool reuse path.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(`{"admit":[{"class":"voice","src":"Seattle","dst":"Chicago"}],"teardown":[7]}`)
	f.Add(`{"admit":[{"class":"voice","src":"a","dst":"b"},{"class":"voice","src":"b","dst":"a"}]}`)
	f.Add(`{"teardown":[1,2,3]}`)
	f.Add(`{"admit":[],"teardown":[]}`)
	f.Add(`{"admit":[{"class":"","src":"a","dst":"b"}]}`)
	f.Add(`{"admit":[{"class":"voice","src":"a","dst":"b","extra":1}]}`)
	f.Add(`{"teardown":[1]} trailing`)
	f.Add(`{"teardown":[` + strings.Repeat("1,", 5000) + `1]}`)
	f.Add(`{"teardown":[` + strings.Repeat("1,", 40000) + `1]}`) // past the 64 KiB cap
	f.Add(`null`)
	f.Add(`42`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, body string) {
		bc := batchCodecPool.Get().(*batchCodec)
		defer batchCodecPool.Put(bc)
		err := bc.decode(http.MaxBytesReader(nil, io.NopCloser(strings.NewReader(body)), maxFlowBody))
		if err == nil {
			if len(body) > maxFlowBody {
				t.Fatalf("accepted %d-byte body past the %d-byte cap", len(body), maxFlowBody)
			}
			n := len(bc.req.Admit) + len(bc.req.Teardown)
			if n == 0 {
				t.Fatal("accepted an empty batch")
			}
			if n > maxBatchOps {
				t.Fatalf("accepted %d operations, cap is %d", n, maxBatchOps)
			}
			for i, a := range bc.req.Admit {
				if a.Class == "" || a.Src == "" || a.Dst == "" {
					t.Fatalf("accepted admit[%d] with empty field: %+v", i, a)
				}
			}
		}
		// Pool-reuse integrity: the same codec must now decode a known
		// request to exactly its contents, whatever the fuzzed body did.
		const good = `{"admit":[{"class":"voice","src":"A","dst":"B"}],"teardown":[7]}`
		if err := bc.decode(strings.NewReader(good)); err != nil {
			t.Fatalf("known-good body rejected after fuzzed decode: %v", err)
		}
		if len(bc.req.Admit) != 1 || len(bc.req.Teardown) != 1 ||
			bc.req.Admit[0] != (flowRequest{Class: "voice", Src: "A", Dst: "B"}) ||
			bc.req.Teardown[0] != 7 {
			t.Fatalf("stale state leaked through codec reuse: %+v", bc.req)
		}
	})
}

// FuzzDecodeFlowRequest throws arbitrary bytes at the POST /v1/flows
// body decoder: it must never panic, anything it accepts has all three
// fields populated, and an accepted request re-encodes to a body the
// decoder accepts identically.
func FuzzDecodeFlowRequest(f *testing.F) {
	f.Add(`{"class":"voice","src":"Seattle","dst":"Chicago"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b"} trailing`)
	f.Add(`{"class":"","src":"a","dst":"b"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b","extra":1}`)
	f.Add(`{"src":"a","dst":"b"}`)
	f.Add(`null`)
	f.Add(`42`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeFlowRequest(strings.NewReader(body))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if req.Class == "" || req.Src == "" || req.Dst == "" {
			t.Fatalf("accepted request with empty field: %+v", req)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to marshal: %v", err)
		}
		back, err := decodeFlowRequest(strings.NewReader(string(out)))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", back, req)
		}
	})
}

// FuzzParseFlowFastMatchesDecoder is the differential oracle for the
// hand-rolled /v1/flows fast parser: on any body it claims (returns
// true for), its result must equal decodeFlowRequest's on the same
// bytes — same parsed fields when the decoder accepts, and the decoder
// may only reject for missing required fields (the one check the
// caller re-applies after a fast parse). Bodies the fast parser
// declines are out of scope: the codec falls back to the decoder.
func FuzzParseFlowFastMatchesDecoder(f *testing.F) {
	f.Add(`{"class":"voice","src":"Seattle","dst":"Chicago"}`)
	f.Add(`{"class":"voice","tenant":"t","src":"a","dst":"b"}`)
	f.Add(` { "CLASS" : "voice" , "Src" : "a" , "dst" : "b" } `)
	f.Add(`{"class":"voice","class":"video","src":"a","dst":"b"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b"}`)
	f.Add(`{"class":"vo\nice","src":"a","dst":"b"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b"} x`)
	f.Add(`{"class":"voice","src":"a","dst":3}`)
	f.Add(`{}`)
	f.Add(`{"class":"üñïçödé","src":"a","dst":"b"}`)
	f.Add("{\"class\":\"\xff\",\"src\":\"a\",\"dst\":\"b\"}")
	f.Fuzz(func(t *testing.T, body string) {
		var fast flowRequest
		if !parseFlowFast([]byte(body), &fast) {
			return // declined: the codec re-parses with the decoder
		}
		exact, err := decodeFlowRequest(strings.NewReader(body))
		if err != nil {
			// The fast path accepts the body shape before the required-
			// fields check; the decoder folds that check in. Any other
			// rejection means the fast parser claimed a body it should
			// have declined.
			if err == errFlowFields &&
				(fast.Class == "" || fast.Src == "" || fast.Dst == "") {
				return
			}
			t.Fatalf("fast parser accepted %q, decoder rejected it: %v", body, err)
		}
		if fast != exact {
			t.Fatalf("fast parse of %q = %+v, decoder = %+v", body, fast, exact)
		}
	})
}
