package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeFlowRequest throws arbitrary bytes at the POST /v1/flows
// body decoder: it must never panic, anything it accepts has all three
// fields populated, and an accepted request re-encodes to a body the
// decoder accepts identically.
func FuzzDecodeFlowRequest(f *testing.F) {
	f.Add(`{"class":"voice","src":"Seattle","dst":"Chicago"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b"} trailing`)
	f.Add(`{"class":"","src":"a","dst":"b"}`)
	f.Add(`{"class":"voice","src":"a","dst":"b","extra":1}`)
	f.Add(`{"src":"a","dst":"b"}`)
	f.Add(`null`)
	f.Add(`42`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeFlowRequest(strings.NewReader(body))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if req.Class == "" || req.Src == "" || req.Dst == "" {
			t.Fatalf("accepted request with empty field: %+v", req)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to marshal: %v", err)
		}
		back, err := decodeFlowRequest(strings.NewReader(string(out)))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", back, req)
		}
	})
}
