package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"unicode/utf8"

	"ubac/internal/admission"
)

// flowCodec carries one POST /v1/flows request through decode →
// controller → encode with the body buffer and response buffer reused
// across requests, replacing the singleton endpoint's per-request
// json.NewDecoder and per-response map + json.NewEncoder. The common
// body shape — a flat object of escape-free string fields — is parsed
// by hand; anything outside that shape re-parses through
// decodeFlowRequest so error text and edge-case semantics (unknown
// fields, trailing data, escapes, invalid UTF-8) stay byte-identical
// with the pre-codec endpoint.
type flowCodec struct {
	buf []byte // request body
	out []byte // response body
	req flowRequest
}

var flowCodecPool = sync.Pool{
	New: func() any { return &flowCodec{buf: make([]byte, 0, 512), out: make([]byte, 0, 64)} },
}

// errFlowFields is the shared required-fields rejection, so the fast
// parser and decodeFlowRequest report the same message.
var errFlowFields = errors.New(`"class", "src" and "dst" are all required`)

// decode reads one /v1/flows body into the codec. Semantics are those
// of decodeFlowRequest: the fast parser only claims bodies where it
// provably agrees (fuzz-compared in FuzzParseFlowFastMatchesDecoder);
// everything else falls back to the json.Decoder path over the same
// buffered bytes.
func (fc *flowCodec) decode(r io.Reader) error {
	fc.buf = fc.buf[:0]
	for {
		if len(fc.buf) == cap(fc.buf) {
			fc.buf = append(fc.buf, 0)[:len(fc.buf)]
		}
		n, err := r.Read(fc.buf[len(fc.buf):cap(fc.buf)])
		fc.buf = fc.buf[:len(fc.buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	fc.req = flowRequest{}
	if parseFlowFast(fc.buf, &fc.req) {
		if fc.req.Class == "" || fc.req.Src == "" || fc.req.Dst == "" {
			return errFlowFields
		}
		return nil
	}
	req, err := decodeFlowRequest(bytes.NewReader(fc.buf))
	fc.req = req
	return err
}

// parseFlowFast parses the common shape of a /v1/flows body — one flat
// JSON object whose keys all name flowRequest fields and whose values
// are escape-free strings — without encoding/json. It returns false
// for any body outside that shape (escapes, control bytes, invalid
// UTF-8, non-string values, unknown keys, trailing data), leaving the
// caller to re-parse with exact decoder semantics. Duplicate keys keep
// the last value and key matching is ASCII-case-insensitive, matching
// encoding/json's struct field resolution.
func parseFlowFast(b []byte, req *flowRequest) bool {
	i := skipJSONSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return false
	}
	i = skipJSONSpace(b, i+1)
	if i < len(b) && b[i] == '}' {
		return skipJSONSpace(b, i+1) == len(b)
	}
	for {
		key, next, ok := scanJSONString(b, i)
		if !ok {
			return false
		}
		i = skipJSONSpace(b, next)
		if i >= len(b) || b[i] != ':' {
			return false
		}
		i = skipJSONSpace(b, i+1)
		val, next, ok := scanJSONString(b, i)
		if !ok {
			return false
		}
		switch {
		case asciiEqualFold(key, "class"):
			req.Class = string(val)
		case asciiEqualFold(key, "tenant"):
			req.Tenant = string(val)
		case asciiEqualFold(key, "src"):
			req.Src = string(val)
		case asciiEqualFold(key, "dst"):
			req.Dst = string(val)
		default:
			return false
		}
		i = skipJSONSpace(b, next)
		if i >= len(b) {
			return false
		}
		switch b[i] {
		case ',':
			i = skipJSONSpace(b, i+1)
		case '}':
			return skipJSONSpace(b, i+1) == len(b)
		default:
			return false
		}
	}
}

// scanJSONString scans a quoted string starting at b[i], returning its
// unquoted bytes and the index past the closing quote. ok is false at
// any escape sequence, unescaped control byte, or invalid UTF-8 — the
// cases where the raw bytes would not equal encoding/json's decoding.
func scanJSONString(b []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	for j := i + 1; j < len(b); j++ {
		c := b[j]
		if c == '"' {
			s = b[i+1 : j]
			if !utf8.Valid(s) {
				return nil, 0, false
			}
			return s, j + 1, true
		}
		if c == '\\' || c < 0x20 {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// skipJSONSpace advances past JSON whitespace.
func skipJSONSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// asciiEqualFold reports whether key equals the lower-case field name
// under ASCII case folding, mirroring encoding/json's key matching for
// the all-ASCII field names of flowRequest.
func asciiEqualFold(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

// rejectPage is one precomputed rejection response.
type rejectPage struct {
	status int
	body   []byte // identical bytes to writeErrReason for this error
}

// admitRejects maps each admission sentinel to its precomputed
// response, so hot rejections (ErrCapacity under overload) skip the
// per-request map + json.NewEncoder. The controller returns these
// sentinels unwrapped; any wrapped or novel error misses the map and
// takes the writeErrReason path.
var admitRejects = func() map[error]rejectPage {
	m := make(map[error]rejectPage)
	for _, err := range []error{
		admission.ErrNoRoute,
		admission.ErrCapacity,
		admission.ErrUnknownClass,
		admission.ErrUnknownFlow,
		admission.ErrShuttingDown,
		admission.ErrPolicyRate,
		admission.ErrPolicyShed,
		admission.ErrPolicyReserve,
	} {
		reason := admitReason(err)
		body, mErr := json.Marshal(map[string]string{"error": err.Error(), "reason": reason})
		if mErr != nil {
			panic(mErr)
		}
		m[err] = rejectPage{status: statusForReason(reason), body: append(body, '\n')}
	}
	return m
}()

// writeAdmitErr writes the rejection for err: the precomputed page
// when err is a bare admission sentinel, the generic reason path
// otherwise.
func writeAdmitErr(w http.ResponseWriter, err error) {
	if page, ok := admitRejects[err]; ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(page.status)
		_, _ = w.Write(page.body)
		return
	}
	reason := admitReason(err)
	writeErrReason(w, statusForReason(reason), err.Error(), reason)
}
