// Command ubacd is the admission-control daemon: it runs the paper's
// configuration step once at startup (safe route selection and
// verification at the requested utilization) and then serves run-time
// admission decisions over HTTP.
//
//	ubacd -topology mci -alpha 0.40 -listen :8080
//
//	POST   /v1/flows                  admit {"class","src","dst"}
//	DELETE /v1/flows/{id}             tear down
//	GET    /v1/stats                  controller counters
//	GET    /v1/headroom?class=&src=&dst=
//	GET    /v1/utilization?class=&link=Seattle-Chicago
//	GET    /healthz
//
// The daemon refuses to start if the configuration does not verify: a
// running ubacd is the proof that every admitted flow meets its
// deadline.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/traffic"
)

func main() {
	topo := flag.String("topology", "mci", "topology: mci | nsfnet | line:N | ... | @file.json")
	alpha := flag.Float64("alpha", 0.40, "utilization assignment for the voice class")
	listen := flag.String("listen", ":8080", "listen address")
	flag.Parse()

	net, err := parseTopologySpec(*topo)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": *alpha})
	if err != nil {
		log.Fatalf("ubacd: configure: %v", err)
	}
	if !dep.Safe() {
		log.Fatalf("ubacd: configuration at alpha=%.3f does not verify; refusing to serve", *alpha)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	srv := newServer(net, ctrl)
	fmt.Printf("ubacd: %s configured at alpha=%.3f (%d routes verified), listening on %s\n",
		net.Name(), *alpha, len(dep.Verify.Routes), *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.routes()))
}
