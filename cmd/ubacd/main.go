// Command ubacd is the admission-control daemon: it runs the paper's
// configuration step once at startup (safe route selection and
// verification at the requested utilization) and then serves run-time
// admission decisions over HTTP.
//
//	ubacd -topology mci -alpha 0.40 -listen :8080
//
//	POST   /v1/flows                  admit {"class","src","dst"}
//	POST   /v1/flows:batch            batch admit/teardown in one round-trip
//	DELETE /v1/flows/{id}             tear down
//	GET    /v1/stats                  controller counters
//	GET    /v1/events?limit=N         admission decision audit trail
//	GET    /v1/headroom?class=&src=&dst=
//	GET    /v1/utilization?class=&link=Seattle-Chicago
//	GET    /metrics                   Prometheus text exposition
//	GET    /healthz
//
// The daemon refuses to start if the configuration does not verify: a
// running ubacd is the proof that every admitted flow meets its
// deadline. Every admission decision is counted in /metrics and
// recorded in the bounded /v1/events audit ring, so rejected traffic is
// always attributable to a reason and a bottleneck hop. SIGINT/SIGTERM
// drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	gonet "net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ubac/internal/admission"
	"ubac/internal/cluster"
	"ubac/internal/config"
	"ubac/internal/core"
	"ubac/internal/routing"
	"ubac/internal/telemetry"
	"ubac/internal/traffic"
	"ubac/internal/wal"
	"ubac/internal/wire"
)

func main() {
	cfgPath := flag.String("config", "", "JSON configuration file (flags set explicitly on the command line override it)")
	topo := flag.String("topology", "mci", "topology: mci | nsfnet | line:N | ... | @file.json")
	alpha := flag.Float64("alpha", 0.40, "utilization assignment for the voice class")
	listen := flag.String("listen", ":8080", "listen address")
	wireListen := flag.String("wire", "", "binary wire-transport listen address (empty = HTTP only)")
	events := flag.Int("events", 4096, "decision audit ring capacity (rounded up to a power of two)")
	workers := flag.Int("workers", 0, "delay solver worker pool size (0 or 1 = sequential fixed-point sweep)")
	routeWorkers := flag.Int("route-workers", 0, "route-selection candidate evaluation pool size (0 or 1 = sequential; routes are bit-identical either way)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown deadline on SIGINT/SIGTERM")
	dataDir := flag.String("data-dir", "", "durability directory for the admission WAL and snapshots (empty = non-durable)")
	fsync := flag.String("fsync", config.DefaultFsync, "WAL append mode: sync | async | off (off only without -data-dir)")
	policySpec := flag.String("policy", "", `admission policy: always_admit | token_bucket:rate=R,burst=B | slo_gated:standard=S,sheddable=H[,name=tier...] | reserve_headroom:fraction=F[,protected=a+b] | @file.json (empty = always_admit)`)
	clusterSpec := flag.String("cluster", "", "distributed admission plane: id=N,members=0@host:port;1@host:port[,heartbeat_ms=...,suspicion_ms=...,ladder_ms=...,lease_ttl_ms=...,lease_block=...] (requires -wire and -data-dir; empty = single node)")
	flag.Parse()

	var policyCfg *config.PolicyConfig
	if *cfgPath != "" {
		file, err := config.LoadFile(*cfgPath)
		if err != nil {
			log.Fatalf("ubacd: %v", err)
		}
		// The file supplies the configuration; explicitly set flags win.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["topology"] {
			*topo = file.Topology
		}
		if !set["alpha"] {
			if a, ok := file.Alphas["voice"]; ok {
				*alpha = a
			}
		}
		if !set["listen"] {
			*listen = file.Listen
		}
		if !set["wire"] {
			*wireListen = file.WireListen
		}
		if !set["events"] {
			*events = file.Events
		}
		if !set["workers"] {
			*workers = file.SolverWorkers
		}
		if !set["route-workers"] {
			*routeWorkers = file.RouteWorkers
		}
		if !set["shutdown-grace"] {
			*shutdownGrace = time.Duration(file.ShutdownGraceSeconds * float64(time.Second))
		}
		if !set["data-dir"] {
			*dataDir = file.DataDir
		}
		if !set["fsync"] {
			*fsync = file.Fsync
		}
		if !set["policy"] && file.Policy != nil {
			policyCfg = file.Policy
		}
		if !set["cluster"] {
			*clusterSpec = file.Cluster
		}
	}
	if policyCfg == nil {
		pc, err := config.ParsePolicySpec(*policySpec)
		if err != nil {
			log.Fatalf("ubacd: %v", err)
		}
		policyCfg = pc
	}
	switch *fsync {
	case "sync", "async":
	case "off":
		if *dataDir != "" {
			log.Fatalf("ubacd: -fsync off with -data-dir %q — drop -data-dir to run non-durable", *dataDir)
		}
	default:
		log.Fatalf("ubacd: -fsync %q not one of sync|async|off", *fsync)
	}
	var clusterCfg *config.ClusterConfig
	if *clusterSpec != "" {
		cc, err := config.ParseClusterSpec(*clusterSpec)
		if err != nil {
			log.Fatalf("ubacd: %v", err)
		}
		if *wireListen == "" {
			log.Fatalf("ubacd: -cluster requires -wire (cluster frames and flow admission ride the wire transport)")
		}
		if *dataDir == "" {
			log.Fatalf("ubacd: -cluster requires -data-dir (the authority journals leases; followers mirror the log)")
		}
		if policyCfg.Kind != "always_admit" {
			log.Fatalf("ubacd: -cluster with policy %s: the policy plane is consulted on the single-node admit path only, not the edge lease path", policyCfg.Describe())
		}
		clusterCfg = cc
	}

	net, err := parseTopologySpec(*topo)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}

	// One registry + audit ring for the whole process: the configuration
	// step's fixed-point solves and every run-time decision land in it.
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(*events)
	sink := telemetry.NewRegistrySink(reg, ring)
	sys.Model().Sink = sink
	sys.Model().Workers = *workers
	sys.Config().Selector = routing.Portfolio{Workers: *routeWorkers}

	configStart := time.Now()
	dep, err := sys.Configure(map[string]float64{"voice": *alpha})
	if err != nil {
		log.Fatalf("ubacd: configure: %v", err)
	}
	configElapsed := time.Since(configStart)
	if !dep.Safe() {
		log.Fatalf("ubacd: configuration at alpha=%.3f does not verify; refusing to serve", *alpha)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	ctrl.SetSink(sink)

	// Admission policy: built against the live controller's utilization
	// counters (the slo_gated load signal samples MaxUtilization), then
	// installed before any traffic is served. always_admit strips to the
	// pre-policy fast path inside SetPolicy.
	pol, err := policyCfg.Build(ctrl.MaxUtilization)
	if err != nil {
		log.Fatalf("ubacd: %v", err)
	}
	ctrl.SetPolicy(pol)

	// Durability: replay prior state, then journal every decision. The
	// WAL refuses logs written under a different configuration (the
	// fingerprint covers topology, classes, alphas and routes), so a
	// reconfigured daemon fails loudly instead of reserving the wrong
	// resources.
	// Cluster nodes skip all of this: their WAL holds lease records (the
	// cluster.Node owns it), their ledger is rebuilt from lease state on
	// promotion, and per-flow journaling would record edge admits the
	// authority already accounts wholesale.
	var walLog *wal.Log
	if *dataDir != "" && clusterCfg == nil {
		fp := ctrl.Fingerprint()
		rec, err := wal.Recover(*dataDir, fp, ctrl)
		if err != nil {
			log.Fatalf("ubacd: recover %s: %v", *dataDir, err)
		}
		if err := ctrl.FinishRecovery(); err != nil {
			log.Fatalf("ubacd: recover %s: %v", *dataDir, err)
		}
		sink.WALRecovered(rec.ReplayedAdmits, rec.ReplayedTeardowns)
		mode := wal.ModeAsync
		if *fsync == "sync" {
			mode = wal.ModeSync
		}
		walLog, err = wal.Open(wal.Options{
			Dir:         *dataDir,
			Mode:        mode,
			Fingerprint: fp,
			Epoch:       rec.Epoch + 1,
			Observer:    sink,
		})
		if err != nil {
			log.Fatalf("ubacd: open wal: %v", err)
		}
		ctrl.SetJournal(walLog)
		fmt.Printf("ubacd: durable in %s (fsync=%s, epoch %d): recovered %d flows (%d admits, %d teardowns replayed",
			*dataDir, mode, walLog.Epoch(), ctrl.Stats().Active, rec.ReplayedAdmits, rec.ReplayedTeardowns)
		if rec.SnapshotLoaded {
			fmt.Printf(" over snapshot seq %d", rec.SnapshotSeq)
		}
		if rec.TailTruncated {
			fmt.Printf("; torn tail repaired, %d bytes cut", rec.TruncatedBytes)
		}
		fmt.Println(")")
	}

	// The distributed admission plane: every flow admit on this node
	// goes through the node's edge lease cells; the wire server carries
	// both client traffic and cluster frames.
	var clusterNode *cluster.Node
	backend := wire.Backend(ctrl)
	wireOpts := wire.Options{Observer: sink}
	if clusterCfg != nil {
		members := make([]cluster.Member, len(clusterCfg.Members))
		for i, m := range clusterCfg.Members {
			members[i] = cluster.Member{ID: m.ID, Addr: m.Addr}
		}
		node, err := cluster.NewNode(cluster.NodeOptions{
			Config: cluster.Config{
				NodeID:            clusterCfg.NodeID,
				Members:           members,
				HeartbeatInterval: time.Duration(clusterCfg.HeartbeatMS) * time.Millisecond,
				SuspicionTimeout:  time.Duration(clusterCfg.SuspicionMS) * time.Millisecond,
				LadderDelay:       time.Duration(clusterCfg.LadderMS) * time.Millisecond,
				LeaseTTL:          time.Duration(clusterCfg.LeaseTTLMS) * time.Millisecond,
				LeaseBlock:        int64(clusterCfg.LeaseBlock),
			},
			Controller: ctrl,
			DataDir:    *dataDir,
			Observer:   sink,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("ubacd: %v", err)
		}
		clusterNode = node
		backend = node.Backend()
		wireOpts.Cluster = node
		fmt.Printf("ubacd: cluster node %d of %d members (data in %s)\n",
			clusterCfg.NodeID, len(members), *dataDir)
	}

	httpHandler := newServer(net, ctrl, reg, ring)
	httpHandler.clustered = clusterCfg != nil
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           httpHandler.routes(),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	fmt.Printf("ubacd: %s configured at alpha=%.3f (%d routes verified in %s, route-workers=%d), policy %s, listening on %s\n",
		net.Name(), *alpha, len(dep.Verify.Routes), configElapsed.Round(time.Millisecond), *routeWorkers,
		policyCfg.Describe(), *listen)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	// The binary wire transport serves the same controller the HTTP
	// handlers do; verdicts are identical on either path.
	var wireSrv *wire.Server
	if *wireListen != "" {
		ln, err := gonet.Listen("tcp", *wireListen)
		if err != nil {
			log.Fatalf("ubacd: wire listen: %v", err)
		}
		wireSrv = wire.NewServer(backend, wireOpts)
		fmt.Printf("ubacd: wire transport listening on %s\n", ln.Addr())
		go func() {
			if err := wireSrv.Serve(ln); err != nil && !errors.Is(err, gonet.ErrClosed) {
				errCh <- fmt.Errorf("wire: %w", err)
			}
		}()
	}
	if clusterNode != nil {
		// Start the control loop only once the wire listener is live, so
		// peers probing this node during their own boot can reach it.
		clusterNode.Start()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("ubacd: %v", err)
	case sig := <-sigCh:
		fmt.Printf("ubacd: %v, draining (deadline %s)\n", sig, *shutdownGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if clusterNode != nil {
			// Relinquish leases (follower) or stop granting (authority)
			// before the transport goes away.
			clusterNode.Stop()
		}
		if wireSrv != nil {
			if err := wireSrv.Shutdown(ctx); err != nil {
				log.Printf("ubacd: wire shutdown: %v", err)
			}
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("ubacd: shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ubacd: %v", err)
		}
		if walLog != nil {
			// The drain is done: snapshot the quiesced registry so the next
			// boot restores without replaying this run's log, then stop the
			// syncer. Any admit that raced the drain either committed before
			// the final flush or got ErrClosed (surfaced to its client as
			// 503) — never a hung write.
			if err := walLog.WriteSnapshot(ctrl.MarshalRegistry); err != nil {
				log.Printf("ubacd: shutdown snapshot: %v", err)
			}
			if err := walLog.Close(); err != nil {
				log.Printf("ubacd: wal close: %v", err)
			}
		}
	}
}
