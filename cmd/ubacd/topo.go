package main

import "ubac/internal/topology"

// parseTopologySpec resolves the -topology flag through the shared
// specification parser.
func parseTopologySpec(spec string) (*topology.Network, error) {
	return topology.Parse(spec)
}
