package main

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestBatchAdmitTeardownLifecycle(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := post(t, ts, "/v1/flows:batch", batchRequest{
		Admit: []flowRequest{
			{Class: "voice", Src: "Seattle", Dst: "Princeton"},
			{Class: "voice", Src: "Princeton", Dst: "Seattle"},
			{Class: "voice", Src: "Atlantis", Dst: "Seattle"}, // unknown router
			{Class: "nope", Src: "Seattle", Dst: "Princeton"}, // unknown class
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch admit: %d %v", resp.StatusCode, body)
	}
	admits := body["admit"].([]any)
	if len(admits) != 4 {
		t.Fatalf("admit results: %v", admits)
	}
	var ids []uint64
	for i := 0; i < 2; i++ {
		r := admits[i].(map[string]any)
		if r["error"] != nil {
			t.Fatalf("admit %d failed: %v", i, r)
		}
		ids = append(ids, uint64(r["id"].(float64)))
	}
	if r := admits[2].(map[string]any); r["reason"] != "unknown_router" {
		t.Errorf("unknown router: %v", r)
	}
	if r := admits[3].(map[string]any); r["reason"] != "unknown_class" {
		t.Errorf("unknown class: %v", r)
	}
	if ids[0] == ids[1] {
		t.Errorf("duplicate flow IDs: %v", ids)
	}

	_, stats := get(t, ts, "/v1/stats")
	if stats["Active"].(float64) != 2 {
		t.Errorf("active = %v", stats["Active"])
	}

	// Tear both down in one batch, one of them twice plus a bogus ID.
	resp, body = post(t, ts, "/v1/flows:batch", map[string]any{
		"teardown": []uint64{ids[0], ids[1], ids[0], 424242},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch teardown: %d %v", resp.StatusCode, body)
	}
	tears := body["teardown"].([]any)
	if len(tears) != 4 {
		t.Fatalf("teardown results: %v", tears)
	}
	for i := 0; i < 2; i++ {
		if r := tears[i].(map[string]any); r["ok"] != true {
			t.Errorf("teardown %d: %v", i, r)
		}
	}
	for i := 2; i < 4; i++ {
		if r := tears[i].(map[string]any); r["reason"] != "unknown_flow" {
			t.Errorf("teardown %d: %v", i, r)
		}
	}
	_, stats = get(t, ts, "/v1/stats")
	if stats["Active"].(float64) != 0 {
		t.Errorf("active after teardown = %v", stats["Active"])
	}
}

// TestBatchSingletonInterop admits via the batch endpoint and tears
// down via the singleton DELETE (and vice versa): flow IDs are one
// namespace regardless of which endpoint issued them.
func TestBatchSingletonInterop(t *testing.T) {
	ts, _ := testDaemon(t)
	_, body := post(t, ts, "/v1/flows:batch", batchRequest{
		Admit: []flowRequest{{Class: "voice", Src: "Seattle", Dst: "Princeton"}},
	})
	id := uint64(body["admit"].([]any)[0].(map[string]any)["id"].(float64))
	if resp := del(t, ts, "/v1/flows/"+strconv.FormatUint(id, 10)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("singleton teardown of batch-admitted flow: %d", resp.StatusCode)
	}

	resp, single := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("singleton admit: %d", resp.StatusCode)
	}
	sid := uint64(single["id"].(float64))
	_, body = post(t, ts, "/v1/flows:batch", map[string]any{"teardown": []uint64{sid}})
	if r := body["teardown"].([]any)[0].(map[string]any); r["ok"] != true {
		t.Fatalf("batch teardown of singleton-admitted flow: %v", r)
	}
}

func TestBatchRejections(t *testing.T) {
	ts, _ := testDaemon(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty object", `{}`, http.StatusBadRequest},
		{"empty arrays", `{"admit":[],"teardown":[]}`, http.StatusBadRequest},
		{"not json", `not json`, http.StatusBadRequest},
		{"trailing data", `{"teardown":[1]} extra`, http.StatusBadRequest},
		{"missing fields", `{"admit":[{"class":"voice","src":"Seattle"}]}`, http.StatusBadRequest},
		{"huge body", `{"teardown":[` + strings.Repeat("1,", 40000) + `1]}`, http.StatusRequestEntityTooLarge},
		{"too many ops", `{"teardown":[` + strings.Repeat("1,", maxBatchOps) + `1]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/flows:batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/flows:batch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET: status %d, want 405", resp.StatusCode)
		}
	}
}
