package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func testDaemon(t *testing.T) (*httptest.Server, *topology.Network) {
	t.Helper()
	net := topology.NSFNet(topology.DefaultCapacity)
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(net, ctrl).routes())
	t.Cleanup(ts.Close)
	return ts, net
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func del(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHealthz(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", resp.StatusCode, body)
	}
}

func TestAdmitTeardownLifecycle(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: %d %v", resp.StatusCode, body)
	}
	id := uint64(body["id"].(float64))

	// Stats reflect the admission.
	_, stats := get(t, ts, "/v1/stats")
	if stats["Active"].(float64) != 1 {
		t.Errorf("active = %v", stats["Active"])
	}

	// Utilization on the first hop is one call's worth.
	resp, u := get(t, ts, "/v1/utilization?class=voice&link=Seattle-Champaign")
	if resp.StatusCode != http.StatusOK {
		// The route may use PaloAlto; check either adjacent link.
		resp, u = get(t, ts, "/v1/utilization?class=voice&link=Seattle-PaloAlto")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("utilization: %d %v", resp.StatusCode, u)
		}
	}

	if resp := del(t, ts, fmt.Sprintf("/v1/flows/%d", id)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("teardown: %d", resp.StatusCode)
	}
	if resp := del(t, ts, fmt.Sprintf("/v1/flows/%d", id)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double teardown: %d", resp.StatusCode)
	}
}

func TestAdmitErrorsOverHTTP(t *testing.T) {
	ts, _ := testDaemon(t)
	cases := []struct {
		req  flowRequest
		want int
	}{
		{flowRequest{Class: "nope", Src: "Seattle", Dst: "Princeton"}, http.StatusNotFound},
		{flowRequest{Class: "voice", Src: "Gotham", Dst: "Princeton"}, http.StatusNotFound},
		{flowRequest{Class: "voice", Src: "Seattle", Dst: "Seattle"}, http.StatusNotFound},
	}
	for i, tc := range cases {
		resp, _ := post(t, ts, "/v1/flows", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("case %d: %d, want %d", i, resp.StatusCode, tc.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/flows", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d", resp.StatusCode)
	}
	// Bad flow id.
	if resp := del(t, ts, "/v1/flows/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d", resp.StatusCode)
	}
}

func TestCapacityConflictOverHTTP(t *testing.T) {
	ts, _ := testDaemon(t)
	// Numeric router IDs are accepted too.
	req := flowRequest{Class: "voice", Src: "0", Dst: "13"}
	admitted := 0
	for {
		resp, _ := post(t, ts, "/v1/flows", req)
		if resp.StatusCode == http.StatusConflict {
			break
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		admitted++
		if admitted > 20000 {
			t.Fatal("no capacity limit hit")
		}
	}
	// Headroom is now zero.
	resp, hr := get(t, ts, "/v1/headroom?class=voice&src=0&dst=13")
	if resp.StatusCode != http.StatusOK || hr["headroom"].(float64) != 0 {
		t.Errorf("headroom: %d %v", resp.StatusCode, hr)
	}
	want := int(math.Floor(0.30 * topology.DefaultCapacity / 32e3))
	if admitted != want {
		t.Errorf("admitted %d, want %d", admitted, want)
	}
}

func TestMethodGuards(t *testing.T) {
	ts, _ := testDaemon(t)
	if resp, _ := get(t, ts, "/v1/flows"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/flows: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/stats", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/utilization?class=voice&link=nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad link: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/utilization?class=voice&link=Seattle-Princeton"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-adjacent link: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/headroom?class=voice&src=Gotham&dst=Princeton"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad headroom src: %d", resp.StatusCode)
	}
}
