package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/policy"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func testDaemon(t *testing.T) (*httptest.Server, *topology.Network) {
	ts, net, _ := testDaemonFull(t)
	return ts, net
}

// testDaemonFull mirrors main.go's wiring: registry + audit ring +
// sink attached to both the delay model (configuration step) and the
// run-time controller.
func testDaemonFull(t *testing.T) (*httptest.Server, *topology.Network, *telemetry.RegistrySink) {
	t.Helper()
	net := topology.NSFNet(topology.DefaultCapacity)
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(256)
	sink := telemetry.NewRegistrySink(reg, ring)
	sys.Model().Sink = sink
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSink(sink)
	ts := httptest.NewServer(newServer(net, ctrl, reg, ring).routes())
	t.Cleanup(ts.Close)
	return ts, net, sink
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func del(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHealthz(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", resp.StatusCode, body)
	}
}

func TestAdmitTeardownLifecycle(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: %d %v", resp.StatusCode, body)
	}
	id := uint64(body["id"].(float64))

	// Stats reflect the admission.
	_, stats := get(t, ts, "/v1/stats")
	if stats["Active"].(float64) != 1 {
		t.Errorf("active = %v", stats["Active"])
	}

	// Utilization on the first hop is one call's worth.
	resp, u := get(t, ts, "/v1/utilization?class=voice&link=Seattle-Champaign")
	if resp.StatusCode != http.StatusOK {
		// The route may use PaloAlto; check either adjacent link.
		resp, u = get(t, ts, "/v1/utilization?class=voice&link=Seattle-PaloAlto")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("utilization: %d %v", resp.StatusCode, u)
		}
	}

	if resp := del(t, ts, fmt.Sprintf("/v1/flows/%d", id)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("teardown: %d", resp.StatusCode)
	}
	if resp := del(t, ts, fmt.Sprintf("/v1/flows/%d", id)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double teardown: %d", resp.StatusCode)
	}
}

func TestAdmitErrorsOverHTTP(t *testing.T) {
	ts, _ := testDaemon(t)
	cases := []struct {
		req  flowRequest
		want int
	}{
		{flowRequest{Class: "nope", Src: "Seattle", Dst: "Princeton"}, http.StatusNotFound},
		{flowRequest{Class: "voice", Src: "Gotham", Dst: "Princeton"}, http.StatusNotFound},
		{flowRequest{Class: "voice", Src: "Seattle", Dst: "Seattle"}, http.StatusNotFound},
	}
	for i, tc := range cases {
		resp, _ := post(t, ts, "/v1/flows", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("case %d: %d, want %d", i, resp.StatusCode, tc.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/flows", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d", resp.StatusCode)
	}
	// Bad flow id.
	if resp := del(t, ts, "/v1/flows/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d", resp.StatusCode)
	}
}

func TestCapacityConflictOverHTTP(t *testing.T) {
	ts, _ := testDaemon(t)
	// Numeric router IDs are accepted too.
	req := flowRequest{Class: "voice", Src: "0", Dst: "13"}
	admitted := 0
	for {
		resp, _ := post(t, ts, "/v1/flows", req)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
		admitted++
		if admitted > 20000 {
			t.Fatal("no capacity limit hit")
		}
	}
	// Headroom is now zero.
	resp, hr := get(t, ts, "/v1/headroom?class=voice&src=0&dst=13")
	if resp.StatusCode != http.StatusOK || hr["headroom"].(float64) != 0 {
		t.Errorf("headroom: %d %v", resp.StatusCode, hr)
	}
	want := int(math.Floor(0.30 * topology.DefaultCapacity / 32e3))
	if admitted != want {
		t.Errorf("admitted %d, want %d", admitted, want)
	}
}

func TestMethodGuards(t *testing.T) {
	ts, _ := testDaemon(t)
	if resp, _ := get(t, ts, "/v1/flows"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/flows: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/stats", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/utilization?class=voice&link=nonsense"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad link: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/utilization?class=voice&link=Seattle-Princeton"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-adjacent link: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/headroom?class=voice&src=Gotham&dst=Princeton"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad headroom src: %d", resp.StatusCode)
	}
}

// TestRejectReasonFields checks the machine-readable reason in error
// bodies, matching the event schema.
func TestRejectReasonFields(t *testing.T) {
	ts, _ := testDaemon(t)
	cases := []struct {
		req    flowRequest
		reason string
	}{
		{flowRequest{Class: "nope", Src: "Seattle", Dst: "Princeton"}, "unknown_class"},
		{flowRequest{Class: "voice", Src: "Seattle", Dst: "Seattle"}, "no_route"},
		{flowRequest{Class: "voice", Src: "Gotham", Dst: "Princeton"}, "unknown_router"},
	}
	for i, tc := range cases {
		_, body := post(t, ts, "/v1/flows", tc.req)
		if body["reason"] != tc.reason {
			t.Errorf("case %d: reason = %v, want %q (body %v)", i, body["reason"], tc.reason, body)
		}
	}
	// Unknown flow on teardown.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/flows/999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if body["reason"] != "unknown_flow" {
		t.Errorf("teardown reason = %v", body["reason"])
	}
}

// TestMetricsEndToEnd drives an admit → reject → teardown cycle and
// asserts /metrics reflects it in Prometheus text format.
func TestMetricsEndToEnd(t *testing.T) {
	ts, _ := testDaemon(t)
	// One admit.
	resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: %d %v", resp.StatusCode, body)
	}
	id := uint64(body["id"].(float64))
	// One no-route reject (src == dst).
	if resp, _ := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Seattle"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected no-route reject, got %d", resp.StatusCode)
	}

	metrics := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	out := metrics()
	for _, line := range []string{
		"ubac_admit_total 1",
		`ubac_reject_total{reason="no_route"} 1`,
		`ubac_reject_total{reason="capacity"} 0`,
		"ubac_active_flows 1",
		"# TYPE ubac_admission_latency_seconds histogram",
		"ubac_admission_latency_seconds_count 2",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in /metrics:\n%s", line, out)
		}
	}
	// The configuration step's fixed-point solves are visible too.
	if !strings.Contains(out, "ubac_fixedpoint_iterations ") ||
		strings.Contains(out, "ubac_fixedpoint_iterations 0\n") {
		t.Error("fixed-point iterations missing or zero after configuration")
	}

	// Teardown closes the cycle.
	if resp := del(t, ts, fmt.Sprintf("/v1/flows/%d", id)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("teardown: %d", resp.StatusCode)
	}
	out = metrics()
	for _, line := range []string{"ubac_teardown_total 1", "ubac_active_flows 0"} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q after teardown", line)
		}
	}
}

// TestEventsEndpoint checks the audit trail: the decisions of an
// admit → reject → teardown cycle, newest first, with resolved names.
func TestEventsEndpoint(t *testing.T) {
	ts, _ := testDaemon(t)
	resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	id := uint64(body["id"].(float64))
	post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Seattle"})
	del(t, ts, fmt.Sprintf("/v1/flows/%d", id))

	resp, out := get(t, ts, "/v1/events?limit=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/events: %d", resp.StatusCode)
	}
	if out["total"].(float64) != 3 {
		t.Errorf("total = %v", out["total"])
	}
	evs := out["events"].([]any)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	first := evs[0].(map[string]any) // newest: the teardown
	if first["verdict"] != "teardown" || first["flow_id"].(float64) != float64(id) {
		t.Errorf("newest event = %v", first)
	}
	second := evs[1].(map[string]any) // the no-route reject
	if second["verdict"] != "reject" || second["reason"] != "no_route" {
		t.Errorf("reject event = %v", second)
	}
	third := evs[2].(map[string]any) // the admit
	if third["verdict"] != "admit" || third["src_name"] != "Seattle" || third["dst_name"] != "Princeton" {
		t.Errorf("admit event = %v", third)
	}
	if third["rate_bps"].(float64) != 32e3 {
		t.Errorf("rate = %v", third["rate_bps"])
	}

	// limit is validated.
	if resp, _ := get(t, ts, "/v1/events?limit=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/events?limit=1"); resp.StatusCode != http.StatusOK {
		t.Errorf("limit=1: %d", resp.StatusCode)
	}
}

// TestCapacityRejectEventHasBottleneck fills a pair to capacity and
// checks the resulting event pinpoints the failing server.
func TestCapacityRejectEventHasBottleneck(t *testing.T) {
	ts, net, sink := testDaemonFull(t)
	req := flowRequest{Class: "voice", Src: "0", Dst: "13"}
	for i := 0; i < 20000; i++ {
		resp, _ := post(t, ts, "/v1/flows", req)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if sink.RejectCapacity.Value() != 1 {
		t.Fatalf("capacity rejects = %d", sink.RejectCapacity.Value())
	}
	evs := sink.Ring().Snapshot(1)
	if len(evs) != 1 || evs[0].Reason != "capacity" {
		t.Fatalf("newest event = %+v", evs)
	}
	if evs[0].Bottleneck < 0 || evs[0].Bottleneck >= net.NumServers() {
		t.Errorf("bottleneck = %d", evs[0].Bottleneck)
	}
	// And the enriched endpoint resolves its name.
	resp, out := get(t, ts, "/v1/events?limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	ev := out["events"].([]any)[0].(map[string]any)
	if ev["bottleneck_name"] == "" {
		t.Errorf("bottleneck_name missing: %v", ev)
	}
}

// TestStatusForReason pins the reason → HTTP status table for every
// machine-readable reason the daemon can emit: rate conditions are
// 429, capacity conditions 503, unknown names 404, anything else 500.
func TestStatusForReason(t *testing.T) {
	cases := []struct {
		reason string
		want   int
	}{
		{"policy_token_bucket", http.StatusTooManyRequests},
		{"policy_shed", http.StatusTooManyRequests},
		{"capacity", http.StatusServiceUnavailable},
		{"policy_reserve", http.StatusServiceUnavailable},
		{"shutting_down", http.StatusServiceUnavailable},
		{"no_route", http.StatusNotFound},
		{"unknown_class", http.StatusNotFound},
		{"unknown_flow", http.StatusNotFound},
		{"unknown_router", http.StatusNotFound},
		{"internal", http.StatusInternalServerError},
		{"", http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusForReason(tc.reason); got != tc.want {
			t.Errorf("statusForReason(%q) = %d, want %d", tc.reason, got, tc.want)
		}
	}
	// Every admission sentinel maps through admitReason to a reason the
	// table knows (nothing falls to the 500 default by accident).
	sentinels := []error{
		admission.ErrNoRoute, admission.ErrCapacity, admission.ErrUnknownClass,
		admission.ErrUnknownFlow, admission.ErrShuttingDown,
		admission.ErrPolicyRate, admission.ErrPolicyShed, admission.ErrPolicyReserve,
	}
	for _, err := range sentinels {
		reason := admitReason(err)
		if reason == "internal" {
			t.Errorf("sentinel %v maps to the internal fallback", err)
		}
		if statusForReason(reason) == http.StatusInternalServerError {
			t.Errorf("sentinel %v (reason %q) falls to the 500 default", err, reason)
		}
	}
}

// testDaemonPolicy wires a daemon like testDaemonFull but with an
// admission policy installed on the controller before serving.
func testDaemonPolicy(t *testing.T, pol policy.Policy) (*httptest.Server, *telemetry.RegistrySink) {
	t.Helper()
	net := topology.NSFNet(topology.DefaultCapacity)
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(256)
	sink := telemetry.NewRegistrySink(reg, ring)
	sys.Model().Sink = sink
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSink(sink)
	ctrl.SetPolicy(pol)
	ts := httptest.NewServer(newServer(net, ctrl, reg, ring).routes())
	t.Cleanup(ts.Close)
	return ts, sink
}

// TestPolicyOverHTTP walks a token-bucket policy through the wire
// contract: a tenant with a one-flow burst admits once and then gets
// 429 with reason "policy_token_bucket" (singleton and in-band in
// :batch), untenanted traffic rides the default bucket, the audit
// event carries the class and tenant, and the per-class counters show
// up on /metrics.
func TestPolicyOverHTTP(t *testing.T) {
	tb, err := policy.NewTokenBucket(
		policy.BucketConfig{Rate: 1, Burst: 1000},
		map[string]policy.BucketConfig{"tenant-a": {Rate: 1e-9, Burst: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb.Clock = func() int64 { return 1 } // frozen clock: no refill ever
	ts, sink := testDaemonPolicy(t, tb)

	// First tenant-a flow spends the whole burst.
	resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Tenant: "tenant-a", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first admit: %d %v", resp.StatusCode, body)
	}
	// Second is rate-limited: 429 with the machine-readable reason.
	resp, body = post(t, ts, "/v1/flows", flowRequest{Class: "voice", Tenant: "tenant-a", Src: "Seattle", Dst: "Princeton"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited admit: %d %v, want 429", resp.StatusCode, body)
	}
	if body["reason"] != "policy_token_bucket" {
		t.Errorf("reason = %v", body["reason"])
	}
	// Untenanted traffic uses the (large) default bucket.
	if resp, body := post(t, ts, "/v1/flows", flowRequest{Class: "voice", Src: "Seattle", Dst: "Princeton"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("default-bucket admit: %d %v", resp.StatusCode, body)
	}

	// The audit event for the policy reject carries class and tenant.
	evs := sink.Ring().Snapshot(3)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	rej := evs[1] // newest-first: default admit, policy reject, first admit
	if rej.Reason != "policy_token_bucket" || rej.Class != "voice" || rej.Tenant != "tenant-a" {
		t.Errorf("policy reject event = %+v", rej)
	}

	// The same reject surfaces in-band through :batch with HTTP 200.
	resp, out := post(t, ts, "/v1/flows:batch", map[string]any{
		"admit": []map[string]string{
			{"class": "voice", "tenant": "tenant-a", "src": "Seattle", "dst": "Princeton"},
			{"class": "voice", "src": "Champaign", "dst": "Princeton"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %v", resp.StatusCode, out)
	}
	admits := out["admit"].([]any)
	if r := admits[0].(map[string]any); r["reason"] != "policy_token_bucket" {
		t.Errorf("batch policy reject = %v", r)
	}
	if r := admits[1].(map[string]any); r["reason"] != nil || r["id"].(float64) == 0 {
		t.Errorf("batch default admit = %v", r)
	}

	// Per-class counters and the policy reject reason are on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`ubac_class_admit_total{class="voice"} 3`,
		`ubac_class_reject_total{class="voice"} 2`,
		`ubac_reject_total{reason="policy_token_bucket"} 2`,
	} {
		if !strings.Contains(string(text), line) {
			t.Errorf("missing %q in /metrics:\n%s", line, text)
		}
	}
}

// TestFlowBodyLimit checks MaxBytesReader on POST /v1/flows.
func TestFlowBodyLimit(t *testing.T) {
	ts, _ := testDaemon(t)
	// Valid JSON shape so the decoder keeps reading until the byte limit
	// trips (raw garbage would fail as a syntax error first).
	huge := append([]byte(`{"class":"`), bytes.Repeat([]byte("x"), maxFlowBody+1)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/flows", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("huge body: %d, want 413", resp.StatusCode)
	}
}

// TestRoutesEndpointAndCacheMetrics walks the whole route-delay cache
// path: /v1/routes serves verified per-route bounds, the first call is
// a cache miss, the second a hit, and both counters surface in
// /metrics as ubac_route_cache_lookups_total.
func TestRoutesEndpointAndCacheMetrics(t *testing.T) {
	ts, _ := testDaemon(t)

	resp, body := get(t, ts, "/v1/routes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/routes: %d %v", resp.StatusCode, body)
	}
	routes, ok := body["routes"].([]any)
	if !ok || len(routes) == 0 {
		t.Fatalf("no routes in response: %v", body)
	}
	for _, e := range routes {
		r := e.(map[string]any)
		if r["class"] != "voice" || r["bound_seconds"].(float64) <= 0 || r["hops"].(float64) < 1 {
			t.Fatalf("implausible route entry: %v", r)
		}
	}
	if body["cache_misses"].(float64) < 1 {
		t.Fatalf("first lookup did not miss: %v", body)
	}

	resp, body = get(t, ts, "/v1/routes?class=voice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/routes?class=voice: %d", resp.StatusCode)
	}
	if body["cache_hits"].(float64) < 1 {
		t.Fatalf("second lookup did not hit: %v", body)
	}
	if resp, _ := get(t, ts, "/v1/routes?class=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown class: %d, want 404", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`ubac_route_cache_lookups_total{result="hit"}`,
		`ubac_route_cache_lookups_total{result="miss"}`,
	} {
		idx := strings.Index(string(text), series)
		if idx < 0 {
			t.Fatalf("metrics missing %s", series)
		}
		rest := strings.TrimSpace(strings.SplitN(string(text[idx+len(series):]), "\n", 2)[0])
		if v, err := strconv.ParseFloat(rest, 64); err != nil || v < 1 {
			t.Fatalf("%s = %q, want >= 1", series, rest)
		}
	}
}
