package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/telemetry"
	"ubac/internal/traffic"

	"ubac/internal/topology"
)

// benchServer wires a server exactly like testDaemonFull but without
// the httptest listener, so handler benchmarks measure decode →
// controller → encode and not loopback TCP.
func benchServer(b *testing.B) *server {
	b.Helper()
	net := topology.NSFNet(topology.DefaultCapacity)
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(256)
	sink := telemetry.NewRegistrySink(reg, ring)
	sys.Model().Sink = sink
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		b.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		b.Fatal(err)
	}
	ctrl.SetSink(sink)
	return newServer(net, ctrl, reg, ring)
}

// rewindBody is a resettable no-op-close request body, so the
// benchmark loop reuses one request without per-iteration readers.
type rewindBody struct{ *bytes.Reader }

func (rewindBody) Close() error { return nil }

// captureRW records status and the last response body without the
// per-request header map and buffer churn of httptest.ResponseRecorder.
type captureRW struct {
	h    http.Header
	code int
	body []byte
}

func (w *captureRW) Header() http.Header { return w.h }

func (w *captureRW) WriteHeader(code int) { w.code = code }

func (w *captureRW) Write(b []byte) (int, error) {
	w.body = append(w.body[:0], b...)
	return len(b), nil
}

// BenchmarkHandleFlowsSingleton measures one POST /v1/flows admission
// through the handler (body decode, router resolution, controller
// admit, response encode) followed by a direct controller teardown to
// keep capacity level — the HTTP singleton hot path minus the socket.
func BenchmarkHandleFlowsSingleton(b *testing.B) {
	s := benchServer(b)
	body := []byte(`{"class":"voice","src":"Seattle","dst":"Princeton"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/flows", nil)
	rb := rewindBody{bytes.NewReader(nil)}
	w := &captureRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Reset(body)
		req.Body = rb
		w.code = 0
		s.handleFlows(w, req)
		if w.code != http.StatusCreated {
			b.Fatalf("status %d: %s", w.code, w.body)
		}
		// Body is {"id":N}\n; teardown directly to keep the ledger level.
		id, err := strconv.ParseUint(string(w.body[6:len(w.body)-2]), 10, 64)
		if err != nil {
			b.Fatalf("parse id from %q: %v", w.body, err)
		}
		if err := s.ctrl.Teardown(admission.FlowID(id)); err != nil {
			b.Fatal(err)
		}
	}
}
