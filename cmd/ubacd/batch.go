package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"ubac/internal/admission"
)

// maxBatchOps bounds the operation count of one :batch request
// independently of the 64 KiB body cap (minimal teardown entries are
// ~2 bytes, so the byte cap alone would admit ~20k operations).
const maxBatchOps = 4096

// batchRequest is the POST /v1/flows:batch body: any mix of
// admissions and teardowns, executed admissions-first.
type batchRequest struct {
	Admit    []flowRequest `json:"admit"`
	Teardown []uint64      `json:"teardown"`
}

// batchAdmitResult is one admission outcome; exactly one of ID or
// Error is set.
type batchAdmitResult struct {
	ID     uint64 `json:"id,omitempty"`
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// batchTeardownResult is one teardown outcome.
type batchTeardownResult struct {
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Reason string `json:"reason,omitempty"`
}

type batchResponse struct {
	Admit    []batchAdmitResult    `json:"admit"`
	Teardown []batchTeardownResult `json:"teardown"`
}

// batchCodec carries one :batch request through decode → controller →
// encode with every slice reused across requests via batchCodecPool,
// replacing the singleton endpoint's per-request json.NewDecoder and
// per-decision response maps. Unlike the singleton decoder it uses
// json.Unmarshal over a pooled buffer, so unknown fields are ignored
// rather than rejected; required fields are still validated.
type batchCodec struct {
	buf   []byte
	req   batchRequest
	resp  batchResponse
	items []admission.BatchItem
	pos   []int32 // result index of each controller item
	res   []admission.BatchResult
	ids   []admission.FlowID
	errs  []error
}

var batchCodecPool = sync.Pool{
	New: func() any { return &batchCodec{buf: make([]byte, 0, 4096)} },
}

// errBatchEmpty / errBatchTooLarge are decode-level rejections,
// distinct from per-operation failures.
var (
	errBatchEmpty    = errors.New(`at least one "admit" or "teardown" entry is required`)
	errBatchTooLarge = fmt.Errorf("batch exceeds %d operations", maxBatchOps)
)

// decode reads and validates one :batch body into the codec. It is
// total over arbitrary input (fuzz-tested): any reader either yields a
// request whose admit entries all have class/src/dst present, or an
// error — never a panic. Slices left over from the codec's previous
// request are reset before unmarshaling so absent fields cannot leak
// stale operations.
func (bc *batchCodec) decode(r io.Reader) error {
	bc.buf = bc.buf[:0]
	for {
		if len(bc.buf) == cap(bc.buf) {
			bc.buf = append(bc.buf, 0)[:len(bc.buf)]
		}
		n, err := r.Read(bc.buf[len(bc.buf):cap(bc.buf)])
		bc.buf = bc.buf[:len(bc.buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	bc.req.Admit = bc.req.Admit[:0]
	bc.req.Teardown = bc.req.Teardown[:0]
	if err := json.Unmarshal(bc.buf, &bc.req); err != nil {
		return err
	}
	if len(bc.req.Admit)+len(bc.req.Teardown) == 0 {
		return errBatchEmpty
	}
	if len(bc.req.Admit)+len(bc.req.Teardown) > maxBatchOps {
		return errBatchTooLarge
	}
	for i, a := range bc.req.Admit {
		if a.Class == "" || a.Src == "" || a.Dst == "" {
			return fmt.Errorf(`admit[%d]: "class", "src" and "dst" are all required`, i)
		}
	}
	return nil
}

// handleFlowsBatch serves POST /v1/flows:batch: admissions and
// teardowns amortized through Controller.AdmitBatch/TeardownBatch.
// Per-operation failures are reported in-band with the same
// machine-readable reasons as the singleton endpoints; the HTTP status
// is 200 whenever the batch itself was well-formed.
func (s *server) handleFlowsBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxFlowBody)
	bc := batchCodecPool.Get().(*batchCodec)
	defer batchCodecPool.Put(bc)
	if err := bc.decode(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, "invalid request: "+err.Error())
		return
	}

	bc.resp.Admit = bc.resp.Admit[:0]
	bc.items = bc.items[:0]
	bc.pos = bc.pos[:0]
	for i, a := range bc.req.Admit {
		src, err := s.resolveRouter(a.Src)
		if err == nil {
			var dst int
			dst, err = s.resolveRouter(a.Dst)
			if err == nil {
				bc.items = append(bc.items, admission.BatchItem{Class: a.Class, Tenant: a.Tenant, Src: src, Dst: dst})
				bc.pos = append(bc.pos, int32(i))
			}
		}
		if err != nil {
			bc.resp.Admit = append(bc.resp.Admit,
				batchAdmitResult{Error: err.Error(), Reason: "unknown_router"})
			continue
		}
		bc.resp.Admit = append(bc.resp.Admit, batchAdmitResult{})
	}
	bc.res = s.ctrl.AdmitBatch(bc.items, bc.res)
	for k, r := range bc.res {
		out := &bc.resp.Admit[bc.pos[k]]
		if r.Err != nil {
			out.Error = r.Err.Error()
			out.Reason = admitReason(r.Err)
			continue
		}
		out.ID = uint64(r.ID)
	}

	bc.ids = bc.ids[:0]
	for _, id := range bc.req.Teardown {
		bc.ids = append(bc.ids, admission.FlowID(id))
	}
	bc.errs = s.ctrl.TeardownBatch(bc.ids, bc.errs)
	bc.resp.Teardown = bc.resp.Teardown[:0]
	for _, err := range bc.errs {
		if err != nil {
			bc.resp.Teardown = append(bc.resp.Teardown,
				batchTeardownResult{Error: err.Error(), Reason: admitReason(err)})
			continue
		}
		bc.resp.Teardown = append(bc.resp.Teardown, batchTeardownResult{OK: true})
	}

	writeJSON(w, http.StatusOK, &bc.resp)
}
