package main

import (
	"flag"
	"fmt"

	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// commonFlags holds the flags shared by most subcommands.
type commonFlags struct {
	topo     string
	burst    float64
	rate     float64
	deadline float64
	selector string
	perHop   float64
	parallel int
	workers  int
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.topo, "topology", "mci",
		"topology: mci | nsfnet | line:N | ring:N | star:N | grid:WxH | tree:F:D | random:N:E:SEED | waxman:N:SEED | ba:N:M:SEED | metro:SEED | backbone:SEED | continental:SEED | @file.json")
	fs.Float64Var(&c.burst, "burst", 640, "leaky bucket burst T in bits")
	fs.Float64Var(&c.rate, "rate", 32e3, "leaky bucket rate rho in bits/s")
	fs.Float64Var(&c.deadline, "deadline", 0.1, "end-to-end deadline D in seconds")
	fs.StringVar(&c.selector, "selector", "portfolio",
		"route selector: sp | heuristic | cheap | backtracking | portfolio")
	fs.Float64Var(&c.perHop, "perhop", 0,
		"constant per-hop delay in seconds charged against deadlines (propagation etc.)")
	fs.IntVar(&c.parallel, "parallel", 0,
		"delay solver worker pool size; 0 or 1 = sequential sweep (results are bit-identical either way)")
	fs.IntVar(&c.workers, "workers", 0,
		"route-selection candidate evaluation pool size; 0 or 1 = sequential (the selection is bit-identical either way)")
	return c
}

func (c *commonFlags) class() traffic.Class {
	return traffic.Class{
		Name:     "rt",
		Bucket:   traffic.LeakyBucket{Burst: c.burst, Rate: c.rate},
		Deadline: c.deadline,
		Priority: 0,
	}
}

func (c *commonFlags) network() (*topology.Network, error) {
	return parseTopology(c.topo)
}

// model builds a delay model over the network with the flag-configured
// per-hop constant and solver pool size.
func (c *commonFlags) model(net *topology.Network) *delay.Model {
	m := delay.NewModel(net)
	m.FixedPerHop = c.perHop
	m.Workers = c.parallel
	return m
}

func (c *commonFlags) makeSelector() (routing.Selector, error) {
	switch c.selector {
	case "sp":
		return routing.SP{}, nil
	case "heuristic":
		return routing.Heuristic{Workers: c.workers}, nil
	case "cheap":
		return routing.Heuristic{Mode: routing.Cheap, Workers: c.workers}, nil
	case "backtracking":
		return routing.Backtracking{Workers: c.workers}, nil
	case "portfolio":
		return routing.Portfolio{Workers: c.workers}, nil
	default:
		return nil, fmt.Errorf("unknown selector %q", c.selector)
	}
}

// parseTopology interprets the -topology flag value (shared syntax in
// internal/topology.Parse).
func parseTopology(spec string) (*topology.Network, error) {
	return topology.Parse(spec)
}
