package main

import (
	"strings"
	"testing"
)

func TestCmdMultiClass(t *testing.T) {
	out := capture(t, func() error {
		return cmdMultiClass([]string{"-topology", "nsfnet"})
	})
	if !strings.Contains(out, "safe=true") || !strings.Contains(out, "video") {
		t.Errorf("multiclass output wrong:\n%s", out)
	}
}

func TestCmdMultiClassScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale search is slow")
	}
	out := capture(t, func() error {
		return cmdMultiClass([]string{"-topology", "line:4", "-scale"})
	})
	if !strings.Contains(out, "max uniform scale") {
		t.Errorf("scale output missing:\n%s", out)
	}
}

func TestCmdStat(t *testing.T) {
	out := capture(t, func() error { return cmdStat(nil) })
	if !strings.Contains(out, "Chernoff") || !strings.Contains(out, "1250") {
		t.Errorf("stat output wrong:\n%s", out)
	}
	if err := cmdStat([]string{"-activity", "0"}); err == nil {
		t.Error("activity=0 accepted")
	}
	if err := cmdStat([]string{"-activity", "2"}); err == nil {
		t.Error("activity=2 accepted")
	}
}

func TestCmdErlang(t *testing.T) {
	out := capture(t, func() error { return cmdErlang(nil) })
	if !strings.Contains(out, "circuits per bottleneck link: 1250") ||
		!strings.Contains(out, "blocking") {
		t.Errorf("erlang output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdErlang([]string{"-offered", "100"}) })
	if !strings.Contains(out, "100.0 Erlangs") {
		t.Errorf("explicit offered load ignored:\n%s", out)
	}
	if err := cmdErlang([]string{"-target", "0"}); err == nil {
		t.Error("target=0 accepted")
	}
}

func TestCmdFailover(t *testing.T) {
	out := capture(t, func() error {
		return cmdFailover([]string{"-link", "Seattle-Chicago", "-alpha", "0.3"})
	})
	if !strings.Contains(out, "routes broken") || !strings.Contains(out, "RECOVERABLE") {
		t.Errorf("failover output wrong:\n%s", out)
	}
	if err := cmdFailover(nil); err == nil {
		t.Error("missing -link accepted")
	}
	if err := cmdFailover([]string{"-link", "bad"}); err == nil {
		t.Error("malformed link accepted")
	}
	if err := cmdFailover([]string{"-link", "Gotham-Miami"}); err == nil {
		t.Error("unknown router accepted")
	}
	if err := cmdFailover([]string{"-link", "Seattle-Chicago", "-alpha", "0.95"}); err == nil {
		t.Error("unsafe baseline accepted")
	}
}
