package main

import (
	"flag"
	"fmt"
	"strings"

	"ubac/internal/config"
	"ubac/internal/routing"
	"ubac/internal/statistical"
	"ubac/internal/traffic"
	"ubac/internal/workload"
)

// cmdMultiClass configures and verifies a voice+video mix with the
// Theorem 5 multi-class analysis (Section 5.4).
func cmdMultiClass(args []string) error {
	fs := flag.NewFlagSet("multiclass", flag.ExitOnError)
	c := addCommon(fs)
	aVoice := fs.Float64("alpha-voice", 0.15, "utilization share of the voice class")
	aVideo := fs.Float64("alpha-video", 0.20, "utilization share of the video class")
	videoRate := fs.Float64("video-rate", 1.5e6, "video class rate in bits/s")
	videoBurst := fs.Float64("video-burst", 15e3, "video class burst in bits")
	videoDeadline := fs.Float64("video-deadline", 0.4, "video class deadline in seconds")
	scale := fs.Bool("scale", false, "also search the maximum uniform scale of the mix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	cfg := config.New(c.model(net))
	cfg.Selector = sel
	voice := traffic.Voice()
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: *videoBurst, Rate: *videoRate},
		Deadline: *videoDeadline,
		Priority: 1,
	}
	specs := []config.ClassSpec{
		{Class: voice, Alpha: *aVoice},
		{Class: video, Alpha: *aVideo},
	}
	res, err := cfg.SelectMultiClass(specs)
	if err != nil {
		return err
	}
	fmt.Printf("joint verification at alpha=(%.2f, %.2f): safe=%v (worst slack %.3f ms)\n",
		*aVoice, *aVideo, res.Verify.Safe, res.Verify.WorstSlack*1e3)
	for _, in := range res.Inputs {
		worst := 0.0
		for _, rr := range res.Verify.Routes {
			if rr.Class == in.Class.Name && rr.Bound > worst {
				worst = rr.Bound
			}
		}
		fmt.Printf("  %-6s routed %3d pairs, worst e2e bound %8.3f ms (deadline %g ms)\n",
			in.Class.Name, in.Routes.Len(), worst*1e3, in.Class.Deadline*1e3)
	}
	if *scale {
		cfg.Granularity = 0.01
		sres, err := cfg.MaxUtilizationScale(specs)
		if err != nil {
			return err
		}
		fmt.Printf("max uniform scale: %.2f -> alpha=(%.3f, %.3f)\n",
			sres.Scale, *aVoice*sres.Scale, *aVideo*sres.Scale)
	}
	return nil
}

// cmdStat prints the statistical admission plan (the Section 7
// extension): deterministic vs Hoeffding vs Chernoff call counts for a
// verified bandwidth budget.
func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	alpha := fs.Float64("alpha", 0.40, "verified utilization assignment")
	capacity := fs.Float64("capacity", 100e6, "link capacity in bits/s")
	peak := fs.Float64("peak", 32e3, "source peak (policed) rate in bits/s")
	activity := fs.Float64("activity", 0.4, "source activity factor (mean/peak)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*activity > 0 && *activity <= 1) {
		return fmt.Errorf("activity %g out of (0,1]", *activity)
	}
	src := statistical.Source{Peak: *peak, Mean: *peak * *activity}
	budget := *alpha * *capacity
	fmt.Printf("budget: %.0f kb/s (alpha=%.2f of %.0f Mb/s)\n", budget/1e3, *alpha, *capacity/1e6)
	fmt.Printf("source: peak %.0f kb/s, activity %.0f%%\n\n", src.Peak/1e3, 100*src.Activity())
	det, err := statistical.DeterministicCount(src, budget)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %-14s %-14s %-8s\n", "eps", "deterministic", "Hoeffding", "Chernoff", "gain")
	for _, eps := range []float64{1e-3, 1e-6, 1e-9} {
		plan, err := statistical.NewPlan(src, budget, eps)
		if err != nil {
			return err
		}
		fmt.Printf("%-10.0e %-14d %-14d %-14d %.2fx\n", eps, det, plan.Hoeffding, plan.Chernoff, plan.Gain())
	}
	return nil
}

// cmdErlang runs call-level capacity planning: Erlang-B blocking for the
// configured per-path circuit count and the offered load needed to hit a
// blocking target.
func cmdErlang(args []string) error {
	fs := flag.NewFlagSet("erlang", flag.ExitOnError)
	alpha := fs.Float64("alpha", 0.40, "utilization assignment")
	capacity := fs.Float64("capacity", 100e6, "link capacity in bits/s")
	rate := fs.Float64("rate", 32e3, "per-call rate in bits/s")
	offered := fs.Float64("offered", 0, "offered load in Erlangs (default: 90% of circuits)")
	target := fs.Float64("target", 0.01, "blocking target for the capacity query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	circuits := int(*alpha * *capacity / *rate)
	a := *offered
	if a <= 0 {
		a = 0.9 * float64(circuits)
	}
	b, err := workload.ErlangB(a, circuits)
	if err != nil {
		return err
	}
	fmt.Printf("circuits per bottleneck link: %d (alpha=%.2f, %.0f kb/s calls)\n",
		circuits, *alpha, *rate/1e3)
	fmt.Printf("blocking at %.1f Erlangs offered: %.4f%%\n", a, 100*b)
	need, err := workload.ErlangBCapacity(a, *target)
	if err != nil {
		return err
	}
	fmt.Printf("circuits needed for %.2f%% blocking at that load: %d\n", 100**target, need)
	return nil
}

// cmdFailover answers "can the network still carry the class at this
// utilization if a given link dies?".
func cmdFailover(args []string) error {
	fs := flag.NewFlagSet("failover", flag.ExitOnError)
	c := addCommon(fs)
	alpha := fs.Float64("alpha", 0.3, "utilization assignment")
	link := fs.String("link", "", "failed link as SrcRouter-DstRouter, e.g. Seattle-Chicago")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *link == "" {
		return fmt.Errorf("need -link A-B")
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	parts := strings.SplitN(*link, "-", 2)
	if len(parts) != 2 {
		return fmt.Errorf("link must be A-B, got %q", *link)
	}
	a, ok := net.RouterByName(parts[0])
	if !ok {
		return fmt.Errorf("unknown router %q", parts[0])
	}
	b, ok := net.RouterByName(parts[1])
	if !ok {
		return fmt.Errorf("unknown router %q", parts[1])
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	cfg := config.New(c.model(net))
	cfg.Selector = sel
	cls := c.class()
	set, rep, err := cfg.SelectRoutes(routing.Request{Class: cls, Alpha: *alpha})
	if err != nil {
		return err
	}
	if !rep.Safe {
		return fmt.Errorf("baseline configuration at alpha=%.3f is already unsafe", *alpha)
	}
	res, err := cfg.Failover(cls, *alpha, set, a, b)
	if err != nil {
		return err
	}
	fmt.Printf("link %s-%s failure: %d of %d routes broken\n",
		parts[0], parts[1], res.BrokenRoutes, set.Len())
	if res.Report.Safe {
		fmt.Printf("RECOVERABLE: reconfiguration at alpha=%.3f verifies on the survivor topology\n", *alpha)
		fmt.Printf("  worst route bound after reroute: %.3f ms (deadline %.0f ms)\n",
			res.Report.WorstDelay*1e3, c.deadline*1e3)
	} else {
		fmt.Printf("NOT RECOVERABLE at alpha=%.3f: reduce utilization or restore the link\n", *alpha)
	}
	return nil
}
