package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ubac/internal/admission"
	"ubac/internal/bounds"
	"ubac/internal/config"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/sim"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
)

func cmdBounds(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ExitOnError)
	c := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	p := bounds.Params{
		N: net.MaxDegree(), L: net.Diameter(),
		Burst: c.burst, Rate: c.rate, Deadline: c.deadline,
	}
	lb, ub, err := bounds.Bounds(p)
	if err != nil {
		return err
	}
	fmt.Printf("topology %s: %d routers, %d link servers, N=%d, L=%d\n",
		net.Name(), net.NumRouters(), net.NumServers(), p.N, p.L)
	fmt.Printf("class: T=%g bits, rho=%g b/s, D=%g s\n", c.burst, c.rate, c.deadline)
	fmt.Printf("alpha lower bound (Theorem 4): %.4f\n", lb)
	fmt.Printf("alpha upper bound (Theorem 4): %.4f\n", ub)
	return nil
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	c := addCommon(fs)
	alpha := fs.Float64("alpha", 0.3, "utilization assignment for the real-time class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	m := c.model(net)
	started := time.Now()
	set, rep, err := sel.Select(m, routing.Request{Class: c.class(), Alpha: *alpha})
	if err != nil {
		return err
	}
	elapsed := time.Since(started)
	fmt.Printf("selector=%s alpha=%.4f routed %d/%d pairs safe=%v\n",
		rep.Selector, *alpha, rep.PairsRouted, rep.PairsTotal, rep.Safe)
	fmt.Printf("worst route delay bound: %.6f s (deadline %.3f s)\n", rep.WorstDelay, c.deadline)
	fmt.Printf("total hops: %d over %d routes\n", rep.TotalHops, set.Len())
	fmt.Printf("selection took %s (%d candidate evaluations, workers=%d)\n",
		elapsed.Round(time.Microsecond), rep.CandidatesTried, c.workers)
	if rep.FailedPair != nil {
		fmt.Printf("first unroutable pair: %s -> %s\n",
			net.Router((*rep.FailedPair)[0]).Name, net.Router((*rep.FailedPair)[1]).Name)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	c := addCommon(fs)
	alpha := fs.Float64("alpha", 0.3, "utilization assignment for the real-time class")
	top := fs.Int("top", 5, "print the N tightest routes")
	routeSpec := fs.String("route", "", "print the per-hop delay budget of one route, e.g. Seattle:Miami")
	headroom := fs.Bool("headroom", false, "also binary-search the maximum safe utilization of the selected routes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	m := c.model(net)
	started := time.Now()
	set, rep, err := sel.Select(m, routing.Request{Class: c.class(), Alpha: *alpha})
	if err != nil {
		return err
	}
	fmt.Printf("selection took %s (%d candidate evaluations, workers=%d)\n",
		time.Since(started).Round(time.Microsecond), rep.CandidatesTried, c.workers)
	if !rep.Safe && rep.FailedPair != nil {
		fmt.Printf("selection FAILED at pair %s -> %s (%d/%d routed)\n",
			net.Router((*rep.FailedPair)[0]).Name, net.Router((*rep.FailedPair)[1]).Name,
			rep.PairsRouted, rep.PairsTotal)
		return nil
	}
	res, err := m.Verify([]delay.ClassInput{{Class: c.class(), Alpha: *alpha, Routes: set}})
	if err != nil {
		return err
	}
	fmt.Printf("verification: safe=%v converged=%v worst slack=%.6f s\n",
		res.Safe, res.Converged, res.WorstSlack)
	// Print the tightest routes.
	reports := append([]delay.RouteReport(nil), res.Routes...)
	for i := 0; i < len(reports); i++ {
		for j := i + 1; j < len(reports); j++ {
			if reports[j].Slack() < reports[i].Slack() {
				reports[i], reports[j] = reports[j], reports[i]
			}
		}
	}
	n := *top
	if n > len(reports) {
		n = len(reports)
	}
	fmt.Printf("%-16s %-16s %5s %12s %12s\n", "src", "dst", "hops", "bound(ms)", "slack(ms)")
	for _, rr := range reports[:n] {
		fmt.Printf("%-16s %-16s %5d %12.3f %12.3f\n",
			net.Router(rr.Src).Name, net.Router(rr.Dst).Name, rr.Hops,
			rr.Bound*1e3, rr.Slack()*1e3)
	}
	if *routeSpec != "" {
		parts := strings.SplitN(*routeSpec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("route must be SRC:DST, got %q", *routeSpec)
		}
		src, ok := net.RouterByName(parts[0])
		if !ok {
			return fmt.Errorf("unknown router %q", parts[0])
		}
		dst, ok := net.RouterByName(parts[1])
		if !ok {
			return fmt.Errorf("unknown router %q", parts[1])
		}
		found := false
		for i := 0; i < set.Len(); i++ {
			rt := set.Route(i)
			if rt.Src != src || rt.Dst != dst {
				continue
			}
			found = true
			fmt.Printf("\ndelay budget %s -> %s:\n", parts[0], parts[1])
			fmt.Printf("%-28s %10s %10s %10s %12s\n", "hop", "d_k(ms)", "Y_k(ms)", "fixed(ms)", "cum(ms)")
			for _, hop := range m.Breakdown(res.Results[0], rt) {
				fmt.Printf("%-28s %10.4f %10.4f %10.4f %12.4f\n",
					hop.Name, hop.D*1e3, hop.Y*1e3, hop.Fixed*1e3, hop.Cumulative*1e3)
			}
		}
		if !found {
			return fmt.Errorf("no configured route %s -> %s", parts[0], parts[1])
		}
	}
	if *headroom {
		cfg := config.New(m)
		hr, err := cfg.MaxUtilizationFixedRoutes(c.class(), set)
		if err != nil {
			return err
		}
		fmt.Printf("fixed-route headroom: alpha up to %.4f verifies on these routes\n", hr.Alpha)
	}
	return nil
}

func cmdMaxUtil(args []string) error {
	fs := flag.NewFlagSet("maxutil", flag.ExitOnError)
	c := addCommon(fs)
	gran := fs.Float64("granularity", 0.0025, "binary search resolution")
	verbose := fs.Bool("v", false, "print every probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	cfg := config.New(c.model(net))
	cfg.Selector = sel
	cfg.Granularity = *gran
	res, err := cfg.MaxUtilization(c.class(), nil)
	if err != nil {
		return err
	}
	if *verbose {
		for _, p := range res.Probes {
			status := "unsafe"
			if p.Safe {
				status = "safe"
			}
			fmt.Printf("  probe alpha=%.4f %s\n", p.Alpha, status)
		}
	}
	fmt.Printf("bounds: [%.4f, %.4f]\n", res.Lower, res.Upper)
	fmt.Printf("maximum safe utilization (%s): %.4f\n", sel.Name(), res.Alpha)
	return nil
}

// cmdTable1 reproduces the paper's Table 1 on the reconstructed MCI
// backbone: lower bound, SP, heuristic, upper bound.
func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	gran := fs.Float64("granularity", 0.0025, "binary search resolution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net := topology.MCI()
	voice := (&commonFlags{burst: 640, rate: 32e3, deadline: 0.1}).class()
	voice.Name = "voice"

	search := func(sel routing.Selector) (float64, error) {
		cfg := config.New(delay.NewModel(net))
		cfg.Selector = sel
		cfg.Granularity = *gran
		res, err := cfg.MaxUtilization(voice, nil)
		if err != nil {
			return 0, err
		}
		return res.Alpha, nil
	}
	p := bounds.Params{N: net.MaxDegree(), L: net.Diameter(), Burst: 640, Rate: 32e3, Deadline: 0.1}
	lb, ub, err := bounds.Bounds(p)
	if err != nil {
		return err
	}
	sp, err := search(routing.SP{})
	if err != nil {
		return err
	}
	heur, err := search(routing.Portfolio{})
	if err != nil {
		return err
	}
	fmt.Println("Table 1: Maximum Utilization (VoIP on the MCI backbone, C=100 Mb/s,")
	fmt.Println("T=640 b, rho=32 kb/s, D=100 ms; paper values 0.30 / 0.33 / 0.45 / 0.61)")
	fmt.Printf("%-14s %-8s %-16s %-12s\n", "Lower Bound", "SP", "Our Heuristics", "Upper Bound")
	fmt.Printf("%-14.2f %-8.2f %-16.2f %-12.2f\n", lb, sp, heur, ub)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	c := addCommon(fs)
	param := fs.String("param", "deadline", "sweep parameter: deadline | diameter | fanin | rate | burst")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	base := bounds.Params{
		N: net.MaxDegree(), L: net.Diameter(),
		Burst: c.burst, Rate: c.rate, Deadline: c.deadline,
	}
	row := func(p bounds.Params, x string) error {
		lb, ub, err := bounds.Bounds(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8.4f %8.4f\n", x, lb, ub)
		return nil
	}
	fmt.Printf("%-12s %8s %8s\n", *param, "lower", "upper")
	switch *param {
	case "deadline":
		for _, d := range []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5} {
			p := base
			p.Deadline = d
			if err := row(p, fmt.Sprintf("%gms", d*1e3)); err != nil {
				return err
			}
		}
	case "diameter":
		for l := 2; l <= 10; l++ {
			p := base
			p.L = l
			if err := row(p, fmt.Sprintf("L=%d", l)); err != nil {
				return err
			}
		}
	case "fanin":
		for n := 2; n <= 16; n += 2 {
			p := base
			p.N = n
			if err := row(p, fmt.Sprintf("N=%d", n)); err != nil {
				return err
			}
		}
	case "rate":
		for _, mul := range []float64{0.25, 0.5, 1, 2, 4, 8} {
			p := base
			p.Rate = c.rate * mul
			if err := row(p, fmt.Sprintf("%gkb/s", p.Rate/1e3)); err != nil {
				return err
			}
		}
	case "burst":
		for _, mul := range []float64{0.5, 1, 2, 4, 8, 16} {
			p := base
			p.Burst = c.burst * mul
			if err := row(p, fmt.Sprintf("%gb", p.Burst)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown sweep parameter %q", *param)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	c := addCommon(fs)
	alpha := fs.Float64("alpha", 0.3, "utilization assignment")
	duration := fs.Float64("duration", 1.0, "simulated seconds")
	seed := fs.Int64("seed", 1, "simulation seed")
	scheduler := fs.String("scheduler", "priority", "scheduler: priority | fifo | wfq")
	flows := fs.Int("flows", 1, "admission attempts per routed pair (attempts beyond capacity are rejected)")
	scale := fs.Bool("scale", false,
		"run the flow-lifetime scale harness: arrivals and teardowns are events, every arrival passes run-time admission in virtual time")
	var sf scaleFlags
	fs.Uint64Var(&sf.lifetimes, "lifetimes", 100000, "flow lifetimes to simulate (-scale)")
	fs.StringVar(&sf.arrival, "arrival", "poisson:rate=1000,holding=10",
		"arrival process (-scale): poisson:rate=R[,holding=H] | mmpp:high=H,low=L,on=S,off=S[,holding=H]")
	fs.StringVar(&sf.report, "report", "", "write the machine-readable run report JSON here (-scale; - = stdout)")
	fs.IntVar(&sf.pkts, "pkts-per-flow", 4, "packet emission cap per admitted flow (-scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale {
		// In scale mode -duration caps virtual time only when given
		// explicitly; the default 1.0 belongs to the packet simulator.
		dur := 0.0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				dur = *duration
			}
		})
		return runScaleCommand(c, *alpha, *seed, *scheduler, dur, sf)
	}
	if *flows < 1 {
		return fmt.Errorf("flows must be >= 1, got %d", *flows)
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	// One registry for the whole run: configuration-time fixed-point
	// solves, run-time admission decisions, and the simulation outcome
	// all land in it and feed the summary below.
	reg := telemetry.NewRegistry()
	sink := telemetry.NewRegistrySink(reg, telemetry.NewRing(1024))
	m := c.model(net)
	m.Sink = sink
	cls := c.class()
	set, rep, err := sel.Select(m, routing.Request{Class: cls, Alpha: *alpha})
	if err != nil {
		return err
	}
	if !rep.Safe {
		return fmt.Errorf("configuration at alpha=%.3f is unsafe; refusing to simulate", *alpha)
	}
	// Every simulated flow first passes run-time admission control over
	// the verified configuration; attempts the utilization test rejects
	// stay out of the simulation, exactly as they would stay off the
	// network.
	ctrl, err := admission.NewController(net,
		[]admission.ClassConfig{{Class: cls, Alpha: *alpha, Routes: set}},
		admission.AtomicLedger)
	if err != nil {
		return err
	}
	ctrl.SetSink(sink)
	sm, err := sim.New(net, sim.Config{Scheduler: *scheduler, Seed: *seed})
	if err != nil {
		return err
	}
	sm.SetSink(sink)
	admitted := 0
	for i := 0; i < set.Len(); i++ {
		rt := set.Route(i)
		for f := 0; f < *flows; f++ {
			if _, err := ctrl.Admit(cls.Name, rt.Src, rt.Dst); err != nil {
				continue
			}
			admitted++
			if _, err := sm.AddFlow(sim.FlowSpec{
				Class: 0, Route: rt.Servers,
				Size: cls.Bucket.Burst, Rate: cls.Bucket.Rate, Burst: cls.Bucket.Burst,
				Pattern: sim.GreedyBurst, Deadline: cls.Deadline,
			}); err != nil {
				return err
			}
		}
	}
	if admitted == 0 {
		return fmt.Errorf("admission control rejected all %d attempts; nothing to simulate", set.Len()**flows)
	}
	out, err := sm.Run(*duration)
	if err != nil {
		return err
	}
	// Validate the run against the analytic bounds through the shared
	// checker (re-solves with the model's settings, so -parallel applies).
	check, err := sim.CheckAgainstBounds(m,
		[]delay.ClassInput{{Class: cls, Alpha: *alpha, Routes: set}}, out)
	if err != nil {
		return err
	}
	cb := check.Classes[0]
	cs := out.PerClass[0]
	fmt.Printf("simulated %d flows for %.2f s under %s scheduling\n", admitted, *duration, *scheduler)
	fmt.Printf("packets: generated=%d delivered=%d late=%d\n", out.Generated, out.Delivered, cs.Late)
	fmt.Printf("observed  max e2e queueing: %.6f s (mean %.6f s, p50 %.2g s, p99 %.2g s)\n",
		cs.MaxQueueing, cs.MeanQueueing(), cs.Percentile(0.5), cs.Percentile(0.99))
	fmt.Printf("analytic  worst-case bound: %.6f s\n", cb.Bound)
	if cb.Within {
		fmt.Printf("VALIDATED: observed <= bound (%.1f%% of bound)\n", 100*cb.Observed/cb.Bound)
	} else {
		fmt.Printf("VIOLATION: observed exceeds bound by %.6f s\n", cb.Observed-cb.Bound)
	}
	printTelemetrySummary(sink)
	return nil
}

// printTelemetrySummary renders the run's registry as a stats-style
// block: admit rate, admission latency quantiles, rejection breakdown,
// and the configuration-time fixed-point solver totals.
func printTelemetrySummary(sink *telemetry.RegistrySink) {
	admit := sink.Admit.Value()
	rejects := []struct {
		reason string
		n      uint64
	}{
		{"capacity", sink.RejectCapacity.Value()},
		{"no_route", sink.RejectNoRoute.Value()},
		{"unknown_class", sink.RejectUnknownClass.Value()},
	}
	var rejected uint64
	for _, r := range rejects {
		rejected += r.n
	}
	total := admit + rejected
	fmt.Println("\n--- telemetry ---")
	if total > 0 {
		fmt.Printf("admission: attempted=%d admitted=%d rejected=%d (admit rate %.1f%%)\n",
			total, admit, rejected, 100*float64(admit)/float64(total))
		if rejected > 0 {
			parts := make([]string, 0, len(rejects))
			for _, r := range rejects {
				if r.n > 0 {
					parts = append(parts, fmt.Sprintf("%s=%d", r.reason, r.n))
				}
			}
			fmt.Printf("  rejection breakdown: %s\n", strings.Join(parts, " "))
		}
		h := sink.AdmissionLatency
		fmt.Printf("  admission latency: p50=%s p99=%s max=%s\n",
			h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
	runs := sink.FixedPointConverged.Value() + sink.FixedPointDiverged.Value()
	if runs > 0 {
		fmt.Printf("fixed-point solver: %d runs (%d converged), %d iterations, wall %s\n",
			runs, sink.FixedPointConverged.Value(),
			sink.FixedPointIterations.Value(), sink.FixedPointDuration.Sum())
	}
	if n := sink.RouteSelectDuration.Count(); n > 0 {
		fmt.Printf("route selection: %d runs, %d candidate evaluations, wall %s\n",
			n, sink.RouteSelectCandidates.Value(), sink.RouteSelectDuration.Sum())
	}
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	c := addCommon(fs)
	format := fs.String("format", "json", "output format: json | dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := c.network()
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		return topology.Encode(os.Stdout, net)
	case "dot":
		return topology.EncodeDOT(os.Stdout, net)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
