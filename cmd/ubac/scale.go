package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ubac/internal/sim"
	"ubac/internal/traffic"
)

// scaleFlags holds the flags specific to `simulate -scale`.
type scaleFlags struct {
	lifetimes uint64
	arrival   string
	report    string
	pkts      int
}

// runScaleCommand executes `ubac simulate -scale`: the flow-lifetime
// discrete-event harness over a generated topology, with every arrival
// admitted through the real controller in virtual time. The command
// exits nonzero when any admitted class observes queueing delay above
// its verified bound — the CI property gate.
func runScaleCommand(c *commonFlags, alpha float64, seed int64, scheduler string,
	duration float64, sf scaleFlags) error {
	spec, err := sim.ParseScaleSpec(c.topo, sf.arrival, seed, sf.lifetimes, duration)
	if err != nil {
		return err
	}
	sel, err := c.makeSelector()
	if err != nil {
		return err
	}
	rep, err := sim.RunScaleSpec(spec, []traffic.Class{c.class()}, alpha, sel, sim.ScaleConfig{
		Scheduler:      scheduler,
		PacketsPerFlow: sf.pkts,
	})
	if err != nil {
		return err
	}

	fmt.Printf("scale run: %s, %s, seed %d\n", spec.Topo, sf.arrival, spec.Seed)
	fmt.Printf("  lifetimes %d  admitted %d  rejected %d  teardowns %d  virtual %.1fs\n",
		rep.Lifetimes, rep.Admitted, rep.Rejected, rep.Teardowns, rep.Duration)
	fmt.Printf("  peak active %d  peak slots %d  peak packets %d  max backlog %d\n",
		rep.MaxActive, rep.PeakSlots, rep.PeakPackets, rep.MaxBacklog)
	for _, pc := range rep.PerClass {
		fmt.Printf("  class %-12s admits %d  pkts %d  maxQ %.3gs  meanQ %.3gs  p99 %.3gs\n",
			pc.Class, pc.Admitted, pc.Packets, pc.MaxQueueing, pc.MeanQueueing, pc.P99Queueing)
	}
	fmt.Printf("  %s\n", rep.Bounds.Verdict())

	if sf.report != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if sf.report == "-" {
			_, err = os.Stdout.Write(b)
		} else {
			err = os.WriteFile(sf.report, b, 0o644)
		}
		if err != nil {
			return err
		}
	}

	if !rep.Bounds.AllWithin {
		return fmt.Errorf("bound property violated:\n%s", rep.Bounds.Verdict())
	}
	return nil
}
