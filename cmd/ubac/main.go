// Command ubac is the operator tool for utilization-based admission
// control: it runs the paper's configuration procedures (bounds,
// verification, route selection, utilization maximization), reproduces
// the evaluation artifacts (table1, sweeps), and drives the validation
// simulator.
//
// Usage:
//
//	ubac <command> [flags]
//
// Commands:
//
//	bounds    print the Theorem 4 utilization bounds for a class
//	select    run safe route selection at a given utilization
//	verify    select routes at a utilization and verify deadlines
//	maxutil   binary-search the maximum safe utilization (Section 5.3)
//	table1    reproduce Table 1 (lower bound / SP / heuristic / upper bound)
//	sweep     print bound series over deadline, diameter, or fan-in
//	simulate  deploy a configuration and validate it in the simulator
//	topology  print the selected topology as JSON or DOT
//	multiclass  verify a voice+video mix with the Theorem 5 analysis
//	stat      statistical admission plan (Section 7 extension)
//	erlang    call-level capacity planning (Erlang-B)
//	failover  link-failure impact and reroute analysis
//
// Run "ubac <command> -h" for per-command flags.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "bounds":
		err = cmdBounds(args)
	case "select":
		err = cmdSelect(args)
	case "verify":
		err = cmdVerify(args)
	case "maxutil":
		err = cmdMaxUtil(args)
	case "table1":
		err = cmdTable1(args)
	case "sweep":
		err = cmdSweep(args)
	case "simulate":
		err = cmdSimulate(args)
	case "topology":
		err = cmdTopology(args)
	case "multiclass":
		err = cmdMultiClass(args)
	case "stat":
		err = cmdStat(args)
	case "erlang":
		err = cmdErlang(args)
	case "failover":
		err = cmdFailover(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ubac: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubac %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `ubac - utilization-based admission control for real-time networks

Commands:
  bounds    print the Theorem 4 utilization bounds for a class
  select    run safe route selection at a given utilization
  verify    select routes at a utilization and verify deadlines
  maxutil   binary-search the maximum safe utilization (Section 5.3)
  table1    reproduce Table 1 (lower bound / SP / heuristic / upper bound)
  sweep     print bound series over deadline, diameter, or fan-in
  simulate  deploy a configuration and validate it in the simulator
  topology  print the selected topology as JSON or DOT
  multiclass  verify a voice+video mix (Theorem 5 analysis)
  stat      statistical admission plan (Section 7 extension)
  erlang    call-level capacity planning (Erlang-B)
  failover  link-failure impact and reroute analysis

Run "ubac <command> -h" for per-command flags.
`)
}
