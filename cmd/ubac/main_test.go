package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ubac/internal/topology"
)

func TestParseTopologyKinds(t *testing.T) {
	cases := []struct {
		spec    string
		routers int
	}{
		{"mci", 19},
		{"nsfnet", 14},
		{"line:5", 5},
		{"ring:6", 6},
		{"star:4", 5},
		{"grid:3x3", 9},
		{"tree:2:2", 7},
		{"random:10:4:7", 10},
	}
	for _, tc := range cases {
		n, err := parseTopology(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if n.NumRouters() != tc.routers {
			t.Errorf("%s: routers = %d, want %d", tc.spec, n.NumRouters(), tc.routers)
		}
	}
}

func TestParseTopologyErrors(t *testing.T) {
	bad := []string{
		"alien",
		"line", "line:x", "line:1",
		"grid:3", "grid:ax3", "grid:3xa", "grid:3x3x3",
		"tree:2", "tree:a:2", "tree:2:a",
		"random:10", "random:a:4:7", "random:10:a:7", "random:10:4:a",
		"@/nonexistent/file.json",
	}
	for _, spec := range bad {
		if _, err := parseTopology(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

func TestParseTopologyFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.Encode(f, topology.NSFNet(45e6)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := parseTopology("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "nsfnet" || n.NumRouters() != 14 {
		t.Errorf("file topology wrong: %s %d", n.Name(), n.NumRouters())
	}
}

func TestMakeSelector(t *testing.T) {
	for _, s := range []string{"sp", "heuristic", "cheap", "backtracking"} {
		c := commonFlags{selector: s}
		sel, err := c.makeSelector()
		if err != nil || sel == nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	c := commonFlags{selector: "alien"}
	if _, err := c.makeSelector(); err == nil {
		t.Error("alien selector accepted")
	}
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errc := make(chan error, 1)
	outc := make(chan string, 1)
	go func() {
		buf := make([]byte, 1<<20)
		n, _ := r.Read(buf)
		total := append([]byte(nil), buf[:n]...)
		for {
			n, err := r.Read(buf)
			total = append(total, buf[:n]...)
			if err != nil {
				break
			}
		}
		outc <- string(total)
	}()
	errc <- fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	if err := <-errc; err != nil {
		t.Fatalf("command failed: %v\noutput: %s", err, out)
	}
	return out
}

func TestCmdBounds(t *testing.T) {
	out := capture(t, func() error { return cmdBounds(nil) })
	if !strings.Contains(out, "0.3000") || !strings.Contains(out, "0.6092") {
		t.Errorf("bounds output wrong:\n%s", out)
	}
}

func TestCmdSelect(t *testing.T) {
	out := capture(t, func() error {
		return cmdSelect([]string{"-alpha", "0.3", "-selector", "sp", "-topology", "nsfnet"})
	})
	if !strings.Contains(out, "routed 182/182") || !strings.Contains(out, "safe=true") {
		t.Errorf("select output wrong:\n%s", out)
	}
}

func TestCmdVerify(t *testing.T) {
	out := capture(t, func() error {
		return cmdVerify([]string{"-alpha", "0.2", "-topology", "line:4", "-top", "3"})
	})
	if !strings.Contains(out, "safe=true") || !strings.Contains(out, "slack") {
		t.Errorf("verify output wrong:\n%s", out)
	}
}

func TestCmdVerifyFailurePath(t *testing.T) {
	out := capture(t, func() error {
		return cmdVerify([]string{"-alpha", "0.95", "-topology", "mci"})
	})
	if !strings.Contains(out, "FAILED") {
		t.Errorf("verify failure output wrong:\n%s", out)
	}
}

func TestCmdMaxUtil(t *testing.T) {
	out := capture(t, func() error {
		return cmdMaxUtil([]string{"-topology", "line:4", "-selector", "sp", "-granularity", "0.01", "-v"})
	})
	if !strings.Contains(out, "maximum safe utilization") || !strings.Contains(out, "probe") {
		t.Errorf("maxutil output wrong:\n%s", out)
	}
}

func TestCmdSweep(t *testing.T) {
	for _, p := range []string{"deadline", "diameter", "fanin"} {
		out := capture(t, func() error { return cmdSweep([]string{"-param", p}) })
		if !strings.Contains(out, "lower") || len(strings.Split(out, "\n")) < 5 {
			t.Errorf("sweep %s output wrong:\n%s", p, out)
		}
	}
	if err := cmdSweep([]string{"-param", "alien"}); err == nil {
		t.Error("alien sweep param accepted")
	}
}

func TestCmdSimulate(t *testing.T) {
	out := capture(t, func() error {
		return cmdSimulate([]string{"-topology", "line:4", "-alpha", "0.2", "-duration", "0.2"})
	})
	if !strings.Contains(out, "VALIDATED") {
		t.Errorf("simulate output wrong:\n%s", out)
	}
}

func TestCmdSimulateRejectsUnsafe(t *testing.T) {
	if err := cmdSimulate([]string{"-alpha", "0.95", "-duration", "0.1"}); err == nil {
		t.Error("unsafe simulate accepted")
	}
}

func TestCmdTopologyFormats(t *testing.T) {
	out := capture(t, func() error { return cmdTopology([]string{"-topology", "nsfnet"}) })
	if !strings.Contains(out, "\"name\": \"nsfnet\"") {
		t.Errorf("json output wrong:\n%s", out)
	}
	out = capture(t, func() error { return cmdTopology([]string{"-topology", "nsfnet", "-format", "dot"}) })
	if !strings.Contains(out, "graph \"nsfnet\"") {
		t.Errorf("dot output wrong:\n%s", out)
	}
	if err := cmdTopology([]string{"-format", "alien"}); err == nil {
		t.Error("alien format accepted")
	}
}

func TestCmdTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 is slow")
	}
	out := capture(t, func() error { return cmdTable1([]string{"-granularity", "0.01"}) })
	if !strings.Contains(out, "Lower Bound") || !strings.Contains(out, "0.30") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
}

func TestCmdVerifyRouteBreakdown(t *testing.T) {
	out := capture(t, func() error {
		return cmdVerify([]string{"-alpha", "0.3", "-route", "Seattle:Miami", "-perhop", "0.001"})
	})
	if !strings.Contains(out, "delay budget Seattle -> Miami") ||
		!strings.Contains(out, "d_k(ms)") {
		t.Errorf("breakdown missing:\n%s", out)
	}
	if err := cmdVerify([]string{"-alpha", "0.3", "-route", "bad"}); err == nil {
		t.Error("malformed route spec accepted")
	}
	if err := cmdVerify([]string{"-alpha", "0.3", "-route", "Gotham:Miami"}); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestCmdSweepRateBurst(t *testing.T) {
	for _, p := range []string{"rate", "burst"} {
		out := capture(t, func() error { return cmdSweep([]string{"-param", p}) })
		if !strings.Contains(out, "lower") || len(strings.Split(out, "\n")) < 6 {
			t.Errorf("sweep %s output wrong:\n%s", p, out)
		}
	}
}

func TestCmdSimulateScale(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "run.json")
	args := []string{
		"-scale", "-topology", "line:4", "-selector", "sp",
		"-alpha", "0.2", "-seed", "5",
		"-arrival", "poisson:rate=200,holding=2", "-lifetimes", "3000",
		"-report", report,
	}
	out := capture(t, func() error { return cmdSimulate(args) })
	if !strings.Contains(out, "ok: all 1 classes within their verified bounds") {
		t.Errorf("scale output missing verdict:\n%s", out)
	}
	first, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, byte-identical report — the determinism contract the
	// CI soak step compares on.
	capture(t, func() error { return cmdSimulate(args) })
	second, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("same-seed scale reruns produced different reports")
	}
	if !strings.Contains(string(first), `"all_within": true`) {
		t.Errorf("report not machine-checkable:\n%s", first)
	}
}

func TestCmdSimulateScaleBadSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "-topology", "@net.json", "-arrival", "poisson:rate=1"},
		{"-scale", "-topology", "line:4", "-arrival", "poisson:rate=0"},
		{"-scale", "-topology", "line:4", "-arrival", "poisson:rate=1", "-lifetimes", "0"},
		{"-scale", "-topology", "tree:100:4", "-arrival", "poisson:rate=1"},
	} {
		if err := cmdSimulate(args); err == nil {
			t.Errorf("scale args %v accepted", args)
		}
	}
}
