// Multiclass: the Section 5.4 extension — voice and video real-time
// classes over best-effort data, analyzed with the multi-class static-
// priority delay bound (Theorem 5 / Equation (24)), then pushed through
// the utilization trade-off search.
//
// Run with: go run ./examples/multiclass
package main

import (
	"fmt"
	"log"

	"ubac/internal/config"
	"ubac/internal/delay"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	net := topology.MCI()
	voice := traffic.Voice()
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6}, // 1.5 Mb/s MPEG-ish
		Deadline: 0.4,
		Priority: 1,
	}
	fmt.Println("classes (priority order):")
	for _, c := range []traffic.Class{voice, video} {
		fmt.Printf("  %-6s T=%6g b  rho=%8g b/s  D=%4g ms\n",
			c.Name, c.Bucket.Burst, c.Bucket.Rate, c.Deadline*1e3)
	}

	cfg := config.New(delay.NewModel(net))
	specs := []config.ClassSpec{
		{Class: voice, Alpha: 0.15},
		{Class: video, Alpha: 0.20},
	}
	res, err := cfg.SelectMultiClass(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint verification at alpha=(%.2f, %.2f): safe=%v\n",
		specs[0].Alpha, specs[1].Alpha, res.Verify.Safe)
	for i, in := range res.Inputs {
		worst := 0.0
		for _, rr := range res.Verify.Routes {
			if rr.Class == in.Class.Name && rr.Bound > worst {
				worst = rr.Bound
			}
		}
		fmt.Printf("  %-6s routed %3d pairs, worst e2e bound %7.3f ms (deadline %g ms)\n",
			in.Class.Name, in.Routes.Len(), worst*1e3, in.Class.Deadline*1e3)
		_ = i
	}

	// Priority isolation in the analysis: voice (higher priority) keeps
	// its single-class bound; video absorbs the interference.
	voiceOnly, err := delay.NewModel(net).SolveTwoClass(res.Inputs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvoice worst per-server delay alone:   %.4f ms\n", voiceOnly.MaxServerDelay()*1e3)
	fmt.Printf("voice worst per-server delay jointly: %.4f ms (identical: higher priority)\n",
		res.Verify.Results[0].MaxServerDelay()*1e3)
	videoOnly, err := delay.NewModel(net).SolveTwoClass(res.Inputs[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video worst per-server delay alone:   %.4f ms\n", videoOnly.MaxServerDelay()*1e3)
	fmt.Printf("video worst per-server delay jointly: %.4f ms (voice interference)\n",
		res.Verify.Results[1].MaxServerDelay()*1e3)

	// How far can this mix scale? (end of Section 5.4)
	cfg.Granularity = 0.01
	scale, err := cfg.MaxUtilizationScale(specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax uniform scale of the (%.2f, %.2f) mix: %.2f -> alpha=(%.3f, %.3f)\n",
		specs[0].Alpha, specs[1].Alpha, scale.Scale,
		specs[0].Alpha*scale.Scale, specs[1].Alpha*scale.Scale)
}
