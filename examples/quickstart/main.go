// Quickstart: configure utilization-based admission control on the MCI
// backbone and admit a few voice flows.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	// 1. The network and the service classes (Section 3 of the paper):
	//    the reconstructed MCI backbone and a VoIP class over best-effort.
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configuration time: the Theorem 4 bounds tell the operator what
	//    utilization is assignable before touching the topology at all.
	lb, ub, err := sys.Bounds("voice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4 bounds for voice: [%.3f, %.3f]\n", lb, ub)

	// 3. Pick a safe assignment (the topology-independent lower bound is
	//    always safe), select routes, and verify every deadline.
	dep, err := sys.Configure(map[string]float64{"voice": lb})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration safe=%v, worst route slack=%.3f ms\n",
		dep.Safe(), dep.Verify.WorstSlack*1e3)

	// 4. Run time: admission control is now a utilization test along the
	//    path — O(path length), no per-flow state in the core.
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		log.Fatal(err)
	}
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	hr, err := ctrl.Headroom("voice", sea, mia)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Seattle->Miami can admit %d voice calls\n", hr)

	var admitted []admission.FlowID
	for i := 0; i < 10; i++ {
		id, err := ctrl.Admit("voice", sea, mia)
		if err != nil {
			log.Fatal(err)
		}
		admitted = append(admitted, id)
	}
	fmt.Printf("admitted %d calls; stats: %+v\n", len(admitted), ctrl.Stats())

	for _, id := range admitted {
		if err := ctrl.Teardown(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after teardown: %+v\n", ctrl.Stats())
}
