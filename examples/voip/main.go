// VoIP: the paper's Section 6 experiment in full — reproduce Table 1 on
// the reconstructed MCI backbone by comparing the maximum safe
// utilization of shortest-path routing against the safe route selection
// heuristic, bracketed by the Theorem 4 bounds.
//
// Run with: go run ./examples/voip
package main

import (
	"fmt"
	"log"
	"time"

	"ubac/internal/bounds"
	"ubac/internal/config"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	net := topology.MCI()
	voice := traffic.Voice()
	fmt.Printf("network: %s (%d routers, %d links, N=%d, L=%d, C=100 Mb/s)\n",
		net.Name(), net.NumRouters(), len(net.Links()), net.MaxDegree(), net.Diameter())
	fmt.Printf("voice class: leaky bucket T=%g bits, rho=%g kb/s, deadline %g ms\n",
		voice.Bucket.Burst, voice.Bucket.Rate/1e3, voice.Deadline*1e3)
	fmt.Printf("flows: all %d ordered router pairs\n\n", len(net.Pairs()))

	p := bounds.Params{
		N: net.MaxDegree(), L: net.Diameter(),
		Burst: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Deadline: voice.Deadline,
	}
	lb, ub, err := bounds.Bounds(p)
	if err != nil {
		log.Fatal(err)
	}

	search := func(sel routing.Selector) *config.MaxUtilResult {
		cfg := config.New(delay.NewModel(net))
		cfg.Selector = sel
		t0 := time.Now()
		res, err := cfg.MaxUtilization(voice, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s max utilization %.4f  (%d probes, %.2fs)\n",
			sel.Name(), res.Alpha, len(res.Probes), time.Since(t0).Seconds())
		return res
	}

	fmt.Println("binary search between the Theorem 4 bounds (Section 5.3):")
	sp := search(routing.SP{})
	heur := search(routing.Portfolio{})

	fmt.Println("\nTable 1: Maximum Utilization")
	fmt.Printf("%-14s %-8s %-16s %-12s\n", "Lower Bound", "SP", "Our Heuristics", "Upper Bound")
	fmt.Printf("%-14.2f %-8.2f %-16.2f %-12.2f   (this reproduction)\n", lb, sp.Alpha, heur.Alpha, ub)
	fmt.Printf("%-14.2f %-8.2f %-16.2f %-12.2f   (paper)\n", 0.30, 0.33, 0.45, 0.61)
	fmt.Printf("\nheuristic gain over SP: +%.0f%% (paper: +%.0f%%)\n",
		100*(heur.Alpha-sp.Alpha)/sp.Alpha, 100*(0.45-0.33)/0.33)

	// What the winning configuration means operationally: calls per link.
	callsPerLink := heur.Alpha * topology.DefaultCapacity / voice.Bucket.Rate
	fmt.Printf("at alpha=%.2f every 100 Mb/s link admits up to %.0f simultaneous calls\n",
		heur.Alpha, callsPerLink)
}
