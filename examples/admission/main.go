// Admission: run-time behavior of the configured system — concurrent
// call churn against the utilization-test admission controller,
// demonstrating the O(path length) admission decision the paper makes
// scalable, plus blocking behavior as offered load crosses the
// configured capacity.
//
// Run with: go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": 0.40})
	if err != nil {
		log.Fatal(err)
	}
	if !dep.Safe() {
		log.Fatal("configuration unsafe")
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: throughput of the admission decision itself.
	const probes = 200000
	pairs := net.Pairs()
	t0 := time.Now()
	var ids []admission.FlowID
	for i := 0; i < probes; i++ {
		p := pairs[i%len(pairs)]
		id, err := ctrl.Admit("voice", p[0], p[1])
		if err == nil {
			ids = append(ids, id)
		}
		if len(ids) > 5000 {
			for _, id := range ids {
				if err := ctrl.Teardown(id); err != nil {
					log.Fatal(err)
				}
			}
			ids = ids[:0]
		}
	}
	for _, id := range ids {
		if err := ctrl.Teardown(id); err != nil {
			log.Fatal(err)
		}
	}
	el := time.Since(t0)
	fmt.Printf("sequential churn: %d admissions in %v (%.0f ops/s, O(path) per op)\n",
		probes, el.Round(time.Millisecond), float64(probes)/el.Seconds())

	// Phase 2: concurrent churn from 8 goroutines (edge routers admit
	// independently in a real deployment).
	var wg sync.WaitGroup
	t0 = time.Now()
	const workers = 8
	const perWorker = 25000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var held []admission.FlowID
			for i := 0; i < perWorker; i++ {
				p := pairs[rng.Intn(len(pairs))]
				if id, err := ctrl.Admit("voice", p[0], p[1]); err == nil {
					held = append(held, id)
				}
				if len(held) > 500 {
					if err := ctrl.Teardown(held[0]); err != nil {
						log.Fatal(err)
					}
					held = held[1:]
				}
			}
			for _, id := range held {
				if err := ctrl.Teardown(id); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	el = time.Since(t0)
	total := workers * perWorker
	fmt.Printf("concurrent churn: %d admissions across %d goroutines in %v (%.0f ops/s)\n",
		total, workers, el.Round(time.Millisecond), float64(total)/el.Seconds())

	// Phase 3: blocking as offered load crosses the configured capacity
	// of one path.
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	cap, err := ctrl.Headroom("voice", sea, mia)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSeattle->Miami capacity: %d calls at alpha=0.40\n", cap)
	fmt.Printf("%-14s %-10s %-10s\n", "offered", "admitted", "blocked")
	for _, load := range []int{cap / 2, cap, cap + cap/4} {
		var ok, blocked int
		var held []admission.FlowID
		for i := 0; i < load; i++ {
			if id, err := ctrl.Admit("voice", sea, mia); err == nil {
				ok++
				held = append(held, id)
			} else {
				blocked++
			}
		}
		fmt.Printf("%-14d %-10d %-10d\n", load, ok, blocked)
		for _, id := range held {
			if err := ctrl.Teardown(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := ctrl.Stats()
	fmt.Printf("\nfinal stats: admitted=%d rejected=%d tornDown=%d active=%d maxActive=%d\n",
		st.Admitted, st.Rejected, st.TornDown, st.Active, st.MaxActive)
}
