// Statistical: the extension sketched in the paper's conclusion —
// statistical instead of deterministic guarantees for VBR sources.
// Talkspurt voice transmits only ~40% of the time, so counting every
// call at its policed peak wastes capacity; the statistical admission
// rules (Hoeffding / Chernoff) admit more calls while keeping the
// probability of exceeding the *verified* bandwidth budget below a
// target ε. The example quantifies the multiplexing gain and checks it
// in the discrete-event simulator with on-off sources.
//
// Run with: go run ./examples/statistical
package main

import (
	"fmt"
	"log"

	"ubac/internal/core"
	"ubac/internal/sim"
	"ubac/internal/statistical"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	// The verified deterministic configuration: voice at alpha=0.40 on
	// the MCI backbone, as in the other examples.
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatal(err)
	}
	const alpha = 0.40
	dep, err := sys.Configure(map[string]float64{"voice": alpha})
	if err != nil {
		log.Fatal(err)
	}
	if !dep.Safe() {
		log.Fatal("deterministic configuration unsafe")
	}
	budget := alpha * topology.DefaultCapacity
	fmt.Printf("verified budget per link: alpha=%.2f of 100 Mb/s = %.0f kb/s\n", alpha, budget/1e3)

	// Talkspurt voice: 32 kb/s while speaking, ~40%% activity.
	src := statistical.Source{Peak: 32e3, Mean: 12.8e3}
	fmt.Printf("source: peak %.0f kb/s, mean %.1f kb/s (activity %.0f%%)\n\n",
		src.Peak/1e3, src.Mean/1e3, 100*src.Activity())

	fmt.Printf("%-10s %-14s %-14s %-10s\n", "eps", "Hoeffding", "Chernoff", "gain")
	for _, eps := range []float64{1e-3, 1e-6, 1e-9} {
		plan, err := statistical.NewPlan(src, budget, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0e %-14d %-14d %.2fx\n", eps, plan.Hoeffding, plan.Chernoff, plan.Gain())
	}
	det, err := statistical.DeterministicCount(src, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic (paper's rule): %d calls per link\n\n", det)

	// Validate in the simulator: load one bottleneck path with the
	// Chernoff population of on-off sources and watch deadlines.
	plan, err := statistical.NewPlan(src, budget, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := dep.AnalyticWorstRoute("voice")
	if err != nil {
		log.Fatal(err)
	}
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	path, err := net.RouterGraph().ShortestPath(sea, mia)
	if err != nil {
		log.Fatal(err)
	}
	srvPath, err := net.ServersFromRouterPath(path)
	if err != nil {
		log.Fatal(err)
	}
	sm, err := sim.New(net, sim.Config{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	// Cap the simulated population to keep the run snappy; the per-flow
	// statistics are what matter.
	n := plan.Chernoff
	if n > 600 {
		n = 600
	}
	for i := 0; i < n; i++ {
		if _, err := sm.AddFlow(sim.FlowSpec{
			Class: 0, Route: srvPath,
			Size: 640, Rate: src.Mean, Burst: 640,
			Pattern: sim.OnOff, OnTime: 0.4, OffTime: 0.6,
			Deadline: traffic.Voice().Deadline,
		}); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sm.Run(5.0)
	if err != nil {
		log.Fatal(err)
	}
	cs := res.PerClass[0]
	fmt.Printf("simulated %d on-off calls (of %d admissible) on Seattle->Miami for 5 s:\n", n, plan.Chernoff)
	fmt.Printf("  delivered %d packets, max e2e queueing %.3f ms (bound %.1f ms), late %d (%.4f%%)\n",
		cs.Delivered, cs.MaxQueueing*1e3, bound*1e3, cs.Late,
		100*float64(cs.Late)/float64(cs.Delivered))
	fmt.Println("\nstatistical admission converts idle talkspurt time into extra calls")
	fmt.Println("while the verified delay bound keeps holding outside ε-rare episodes.")
}
