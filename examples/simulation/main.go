// Simulation: empirical validation of the configuration-time analysis —
// deploy a verified voice configuration on the MCI backbone, drive every
// route with leaky-bucket worst-case (greedy burst) sources plus greedy
// best-effort cross traffic, and check that no packet ever exceeds the
// analytic worst-case bound. Also contrasts the paper's class-based
// static priority forwarding against FIFO to show why the discipline
// matters.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"

	"ubac/internal/core"
	"ubac/internal/sim"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatal(err)
	}
	const alpha = 0.40
	dep, err := sys.Configure(map[string]float64{"voice": alpha})
	if err != nil {
		log.Fatal(err)
	}
	if !dep.Safe() {
		log.Fatal("configuration unsafe")
	}
	bound, err := dep.AnalyticWorstRoute("voice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified voice configuration at alpha=%.2f: %d routes, worst-case bound %.3f ms\n",
		alpha, len(dep.Verify.Routes), bound*1e3)

	run := func(scheduler string) *sim.Results {
		sm, err := sim.New(net, sim.Config{Scheduler: scheduler, Seed: 42, Classes: 2})
		if err != nil {
			log.Fatal(err)
		}
		voice := traffic.Voice()
		in := dep.Inputs()[0]
		for i := 0; i < in.Routes.Len(); i++ {
			rt := in.Routes.Route(i)
			// Synchronized greedy bursts: every flow dumps its bucket at
			// t=0 — the adversarial arrival the analysis assumes.
			if _, err := sm.AddFlow(sim.FlowSpec{
				Class: 0, Route: rt.Servers,
				Size: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Burst: voice.Bucket.Burst,
				Pattern: sim.GreedyBurst, Deadline: voice.Deadline,
			}); err != nil {
				log.Fatal(err)
			}
			// Best-effort cross traffic hammering the same route.
			if _, err := sm.AddFlow(sim.FlowSpec{
				Class: 1, Route: rt.Servers,
				Size: 12e3, Rate: 2e6, Burst: 48e3,
				Pattern: sim.GreedyBurst,
			}); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sm.Run(1.0)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("\n%-10s %-12s %-14s %-14s %-8s\n",
		"scheduler", "delivered", "voice max(ms)", "voice mean(ms)", "late")
	for _, sched := range []string{"priority", "fifo"} {
		res := run(sched)
		cs := res.PerClass[0]
		fmt.Printf("%-10s %-12d %-14.4f %-14.4f %-8d\n",
			sched, res.Delivered, cs.MaxQueueing*1e3, cs.MeanQueueing()*1e3, cs.Late)
		if sched == "priority" {
			if cs.MaxQueueing <= bound {
				fmt.Printf("           VALIDATED: observed %.4f ms <= analytic bound %.3f ms (%.1f%%)\n",
					cs.MaxQueueing*1e3, bound*1e3, 100*cs.MaxQueueing/bound)
			} else {
				fmt.Printf("           VIOLATION: observed %.4f ms > bound %.3f ms\n",
					cs.MaxQueueing*1e3, bound*1e3)
			}
			if cs.Late > 0 {
				fmt.Println("           unexpected deadline misses under a verified configuration")
			}
		}
	}
	fmt.Println("\nunder FIFO the best-effort bursts push voice queueing up by orders of")
	fmt.Println("magnitude — the class-based static priority forwarding module is what")
	fmt.Println("makes the configuration-time bound deployable.")
}
