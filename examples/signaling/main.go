// Signaling: the run-time admission module deployed as hop-by-hop
// reservation signaling between per-router agents (how DiffServ edge
// routers would actually establish flows), compared against the
// centralized utilization ledger used for analysis. Both enforce the
// identical O(path length) utilization test; the signaling plane adds
// the coordination cost of real message passing.
//
// Run with: go run ./examples/signaling
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/signaling"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func main() {
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		log.Fatal(err)
	}
	cfgStart := time.Now()
	dep, err := sys.Configure(map[string]float64{"voice": 0.40})
	if err != nil || !dep.Safe() {
		log.Fatal("configuration failed")
	}
	in := dep.Inputs()[0]
	fmt.Printf("route selection + verification: %d routes in %s\n",
		in.Routes.Len(), time.Since(cfgStart).Round(time.Millisecond))

	// Centralized ledger (the analysis/benchmark model).
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		log.Fatal(err)
	}
	// Distributed signaling plane (the deployment model).
	plane, err := signaling.Start(net, []signaling.ClassConfig{
		{Class: in.Class, Alpha: in.Alpha, Routes: in.Routes},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer plane.Stop()

	const calls = 100000
	pairs := net.Pairs()

	t0 := time.Now()
	for i := 0; i < calls; i++ {
		p := pairs[i%len(pairs)]
		if id, err := ctrl.Admit("voice", p[0], p[1]); err == nil {
			if err := ctrl.Teardown(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	central := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < calls; i++ {
		p := pairs[i%len(pairs)]
		if id, err := plane.Establish("voice", p[0], p[1]); err == nil {
			if err := plane.Terminate(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	distributed := time.Since(t0)

	fmt.Printf("%d admit+teardown cycles over the 342-pair MCI route table:\n", calls)
	fmt.Printf("  centralized ledger:      %8v  (%.2f µs/op)\n",
		central.Round(time.Millisecond), float64(central.Microseconds())/calls)
	fmt.Printf("  hop-by-hop signaling:    %8v  (%.2f µs/op)\n",
		distributed.Round(time.Millisecond), float64(distributed.Microseconds())/calls)
	fmt.Printf("  coordination overhead:   %.1fx\n\n",
		float64(distributed)/float64(central))

	// Both planes must agree exactly on capacity: fill one path.
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	nCentral := 0
	var ids []admission.FlowID
	for {
		id, err := ctrl.Admit("voice", sea, mia)
		if err != nil {
			break
		}
		ids = append(ids, id)
		nCentral++
	}
	for _, id := range ids {
		if err := ctrl.Teardown(id); err != nil {
			log.Fatal(err)
		}
	}
	nPlane := 0
	var fids []signaling.FlowID
	for {
		id, err := plane.Establish("voice", sea, mia)
		if err != nil {
			if !errors.Is(err, signaling.ErrRejected) {
				log.Fatal(err)
			}
			break
		}
		fids = append(fids, id)
		nPlane++
	}
	for _, id := range fids {
		if err := plane.Terminate(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("Seattle->Miami capacity: centralized %d calls, signaling %d calls (must match)\n",
		nCentral, nPlane)
	if nCentral != nPlane {
		log.Fatal("planes disagree!")
	}
	fmt.Println("\nthe decision procedure is identical either way — the paper's point is")
	fmt.Println("that it needs only per-class counters at each hop, never per-flow state.")
}
