module ubac

go 1.22
