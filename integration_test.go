package ubac_test

import (
	"math"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/bounds"
	"ubac/internal/core"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/sim"
	"ubac/internal/statistical"
	"ubac/internal/topology"
	"ubac/internal/traffic"
	"ubac/internal/workload"
)

// TestLifecycleEndToEnd walks the full paper life cycle on NSFNet:
// bounds → maximize utilization → configure → deploy → admit to
// capacity → simulate under the admitted worst case.
func TestLifecycleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}
	net := topology.NSFNet(topology.DefaultCapacity)
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}

	lb, ub, err := sys.Bounds("voice")
	if err != nil {
		t.Fatal(err)
	}
	if !(0 < lb && lb < ub && ub <= 1) {
		t.Fatalf("bounds broken: %g, %g", lb, ub)
	}

	maxRes, err := sys.MaxUtilization("voice")
	if err != nil {
		t.Fatal(err)
	}
	if maxRes.Alpha < lb-1e-9 || maxRes.Alpha > ub+1e-9 {
		t.Fatalf("max alpha %.4f outside [%.4f, %.4f]", maxRes.Alpha, lb, ub)
	}
	t.Logf("NSFNet voice: bounds [%.3f, %.3f], achieved %.3f", lb, ub, maxRes.Alpha)

	dep, err := sys.Configure(map[string]float64{"voice": maxRes.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Safe() {
		t.Fatal("configuration at the achieved maximum is unsafe")
	}

	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one pair to capacity and check the count matches αC/ρ on the
	// bottleneck.
	pairs := net.Pairs()
	src, dst := pairs[0][0], pairs[0][1]
	hr, err := ctrl.Headroom("voice", src, dst)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for {
		if _, err := ctrl.Admit("voice", src, dst); err != nil {
			break
		}
		admitted++
	}
	if admitted != hr {
		t.Errorf("admitted %d, headroom said %d", admitted, hr)
	}
	want := int(maxRes.Alpha * topology.DefaultCapacity / traffic.Voice().Bucket.Rate)
	if admitted != want {
		t.Errorf("admitted %d flows, want alpha*C/rho = %d", admitted, want)
	}

	// The simulator under synchronized greedy bursts stays within the
	// verified bound.
	bound, err := dep.AnalyticWorstRoute("voice")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := dep.Simulator(sim.Config{Seed: 3}, 1, sim.GreedyBurst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerClass[0].MaxQueueing; got > bound {
		t.Errorf("simulated %g exceeds bound %g", got, bound)
	}
	if res.PerClass[0].Late != 0 {
		t.Errorf("late packets under a verified configuration: %d", res.PerClass[0].Late)
	}
}

// TestPerServerBoundsHoldInSimulation checks the bound server by server,
// not just end to end: every link server's observed single-hop queueing
// delay must stay within its analytic d_k.
func TestPerServerBoundsHoldInSimulation(t *testing.T) {
	net := topology.NSFNet(topology.DefaultCapacity)
	m := delay.NewModel(net)
	voice := traffic.Voice()
	const alpha = 0.25
	set, rep, err := (routing.SP{}).Select(m, routing.Request{Class: voice, Alpha: alpha})
	if err != nil || !rep.Safe {
		t.Fatalf("select: %v safe=%v", err, rep != nil && rep.Safe)
	}
	res, err := m.SolveTwoClass(delay.ClassInput{Class: voice, Alpha: alpha, Routes: set})
	if err != nil || !res.Converged {
		t.Fatalf("solve: %v", err)
	}
	sm, err := sim.New(net, sim.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < set.Len(); i++ {
		if _, err := sm.AddFlow(sim.FlowSpec{
			Class: 0, Route: set.Route(i).Servers,
			Size: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Burst: voice.Bucket.Burst,
			Pattern: sim.GreedyBurst, Deadline: voice.Deadline,
		}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := sm.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < net.NumServers(); s++ {
		if out.MaxHopDelay[s] > res.D[s]+1e-12 {
			t.Errorf("server %s: observed hop delay %g exceeds analytic %g",
				net.ServerName(s), out.MaxHopDelay[s], res.D[s])
		}
	}
}

// TestStatisticalPlanDeploys wires the statistical extension into the
// standard controller through the effective-rate trick and checks the
// per-path call capacity matches the Chernoff count.
func TestStatisticalPlanDeploys(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	const alpha = 0.40
	voice := traffic.Voice()
	set, rep, err := (routing.SP{}).Select(m, routing.Request{Class: voice, Alpha: alpha})
	if err != nil || !rep.Safe {
		t.Fatalf("select: %v", err)
	}
	plan, err := statistical.NewPlan(
		statistical.Source{Peak: 32e3, Mean: 12.8e3}, alpha*100e6, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy with the effective rate: the plain utilization test now
	// enforces the statistical count.
	statClass := voice
	statClass.Bucket.Rate = plan.EffectiveRate
	ctrl, err := admission.NewController(net,
		[]admission.ClassConfig{{Class: statClass, Alpha: alpha, Routes: set}},
		admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := ctrl.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hr != plan.Chernoff {
		t.Errorf("statistical capacity = %d, want Chernoff count %d", hr, plan.Chernoff)
	}
	if plan.Chernoff <= plan.Deterministic {
		t.Errorf("no gain: %d vs %d", plan.Chernoff, plan.Deterministic)
	}
}

// TestWorkloadAgainstDeployment replays Poisson churn against a full
// MCI deployment and cross-checks measured blocking against Erlang-B on
// the bottleneck.
func TestWorkloadAgainstDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow replay")
	}
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": 0.01})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.LockedLedger)
	if err != nil {
		t.Fatal(err)
	}
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	circuits, err := ctrl.Headroom("voice", sea, mia)
	if err != nil {
		t.Fatal(err)
	}
	offered := float64(circuits) * 0.9
	g, err := workload.NewGenerator(offered/2, 2, [][2]int{{sea, mia}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	calls := g.Generate(2000)
	st := workload.Replay(workload.Schedule(calls), calls, ctrlAdapter{ctrl})
	want, err := workload.ErlangB(offered, circuits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Blocking()-want) > 0.02 {
		t.Errorf("blocking %.4f vs Erlang-B %.4f (circuits=%d, offered=%.1fE)",
			st.Blocking(), want, circuits, offered)
	}
	if ctrl.Stats().Active != 0 {
		t.Error("replay leaked reservations")
	}
}

type ctrlAdapter struct{ ctrl *admission.Controller }

func (a ctrlAdapter) TryAdmit(src, dst int) (uint64, bool) {
	id, err := a.ctrl.Admit("voice", src, dst)
	return uint64(id), err == nil
}

func (a ctrlAdapter) Release(h uint64) { _ = a.ctrl.Teardown(admission.FlowID(h)) }

// TestBoundsBracketAchievedEverywhere sweeps several topologies and
// asserts the Theorem 4 bracket LB ≤ achieved ≤ UB with both selectors —
// the invariant behind Figure F-D.
func TestBoundsBracketAchievedEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	nets := []*topology.Network{topology.NSFNet(topology.DefaultCapacity)}
	if g, err := topology.Grid(3, 3, topology.DefaultCapacity); err == nil {
		nets = append(nets, g)
	}
	if r, err := topology.Ring(6, topology.DefaultCapacity); err == nil {
		nets = append(nets, r)
	}
	for _, net := range nets {
		classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(net, classes)
		if err != nil {
			t.Fatal(err)
		}
		sys.Config().Granularity = 0.01
		// The bracket invariant holds for SP (Theorem 4's own construction)
		// and for the portfolio (never worse than SP); a single greedy
		// heuristic can fail even at the lower bound on sparse topologies.
		for _, sel := range []routing.Selector{routing.SP{}, routing.Portfolio{}} {
			sys.Config().Selector = sel
			res, err := sys.MaxUtilization("voice")
			if err != nil {
				t.Fatal(err)
			}
			if res.Alpha < res.Lower-1e-9 || res.Alpha > res.Upper+1e-9 {
				t.Errorf("%s/%s: achieved %.3f outside [%.3f, %.3f]",
					net.Name(), sel.Name(), res.Alpha, res.Lower, res.Upper)
			}
		}
	}
}

// Theorem 4's defining property, checked end to end on random
// topologies: at any utilization not exceeding the lower bound,
// shortest-path routing of all pairs verifies safely — regardless of
// adjacency.
func TestLowerBoundTopologyIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property sweep")
	}
	voice := traffic.Voice()
	for seed := int64(1); seed <= 6; seed++ {
		net, err := topology.Random(12, 6, topology.DefaultCapacity, seed)
		if err != nil {
			t.Fatal(err)
		}
		p := bounds.Params{
			N: net.MaxDegree(), L: net.Diameter(),
			Burst: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Deadline: voice.Deadline,
		}
		lb, err := bounds.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		m := delay.NewModel(net)
		_, rep, err := (routing.SP{}).Select(m, routing.Request{Class: voice, Alpha: lb * 0.999})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe {
			t.Errorf("seed %d (%s, L=%d N=%d): SP unsafe at 0.999·LB=%.4f",
				seed, net.Name(), net.Diameter(), net.MaxDegree(), lb*0.999)
		}
	}
	// Waxman and Barabási-Albert shapes too.
	for _, mk := range []func() (*topology.Network, error){
		func() (*topology.Network, error) {
			return topology.Waxman(14, 0.25, 0.4, topology.DefaultCapacity, 3)
		},
		func() (*topology.Network, error) {
			return topology.BarabasiAlbert(14, 2, topology.DefaultCapacity, 3)
		},
	} {
		net, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		p := bounds.Params{
			N: net.MaxDegree(), L: net.Diameter(),
			Burst: voice.Bucket.Burst, Rate: voice.Bucket.Rate, Deadline: voice.Deadline,
		}
		lb, err := bounds.Lower(p)
		if err != nil {
			t.Fatal(err)
		}
		m := delay.NewModel(net)
		_, rep, err := (routing.SP{}).Select(m, routing.Request{Class: voice, Alpha: lb * 0.999})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe {
			t.Errorf("%s: SP unsafe at 0.999·LB=%.4f", net.Name(), lb*0.999)
		}
	}
}
